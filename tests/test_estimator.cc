#include "estimate/density_estimator.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "storage/convert.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

TEST(EstimatorTest, ZeroTimesAnythingIsZero) {
  DensityMap a(64, 64, 16);  // all-zero
  DensityMap b(64, 64, 16);
  for (index_t bi = 0; bi < b.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < b.grid_cols(); ++bj) b.Set(bi, bj, 0.9);
  }
  DensityMap c = EstimateProductDensity(a, b);
  for (index_t bi = 0; bi < c.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < c.grid_cols(); ++bj) {
      EXPECT_DOUBLE_EQ(c.At(bi, bj), 0.0);
    }
  }
}

TEST(EstimatorTest, FullTimesFullIsFull) {
  DensityMap a(32, 32, 16), b(32, 32, 16);
  for (index_t bi = 0; bi < 2; ++bi) {
    for (index_t bj = 0; bj < 2; ++bj) {
      a.Set(bi, bj, 1.0);
      b.Set(bi, bj, 1.0);
    }
  }
  DensityMap c = EstimateProductDensity(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 1.0);
}

TEST(EstimatorTest, RegionEstimateBitwiseMatchesFullEstimate) {
  // The fused chain executor fills a product's estimate region-by-region
  // as producing bands complete; downstream decisions only stay identical
  // to the unfused path if every region value is BITWISE equal to the
  // full estimator's, not merely close.
  CooMatrix a_coo = atmx::testing::RandomCoo(96, 64, 900, 50);
  CooMatrix b_coo = atmx::testing::RandomCoo(64, 80, 700, 51);
  DensityMap a = DensityMap::FromCoo(a_coo, 16);
  DensityMap b = DensityMap::FromCoo(b_coo, 16);

  DensityMap full = EstimateProductDensity(a, b);
  DensityMap pieced(96, 80, 16);
  // Irregular single-block and multi-block regions covering the grid.
  for (index_t bi = 0; bi < full.grid_rows(); ++bi) {
    EstimateProductDensityRegion(a, b, bi, bi + 1, 0, 2, &pieced);
    EstimateProductDensityRegion(a, b, bi, bi + 1, 2, full.grid_cols(),
                                 &pieced);
  }
  for (index_t bi = 0; bi < full.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < full.grid_cols(); ++bj) {
      // Exact: same contraction terms in the same order.
      EXPECT_EQ(full.At(bi, bj), pieced.At(bi, bj))
          << "block (" << bi << "," << bj << ")";
    }
  }
}

TEST(EstimatorTest, MatchesClosedFormSingleBlock) {
  // One block of width w: rho_c = 1 - (1 - ra*rb)^w.
  DensityMap a(16, 16, 16), b(16, 16, 16);
  a.Set(0, 0, 0.3);
  b.Set(0, 0, 0.4);
  DensityMap c = EstimateProductDensity(a, b);
  EXPECT_NEAR(c.At(0, 0), 1.0 - std::pow(1.0 - 0.12, 16.0), 1e-12);
}

TEST(EstimatorTest, BlockStructurePropagates) {
  // A has a dense top-left block only; B has a dense bottom-right block
  // only => product is entirely empty (contraction never overlaps).
  DensityMap a(32, 32, 16), b(32, 32, 16);
  a.Set(0, 0, 1.0);
  b.Set(1, 1, 1.0);
  DensityMap c = EstimateProductDensity(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 0.0);

  // Now make B's top-left dense too: C(0,0..1) becomes reachable via k=0.
  b.Set(0, 0, 1.0);
  b.Set(0, 1, 1.0);
  DensityMap c2 = EstimateProductDensity(a, b);
  EXPECT_DOUBLE_EQ(c2.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c2.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c2.At(1, 0), 0.0);
}

TEST(EstimatorTest, EstimateTracksActualProductDensity) {
  // Property check on a uniform random matrix: the estimated result nnz
  // should be within a modest factor of the actual product nnz.
  CooMatrix coo = GenerateUniform(256, 256, 4000, 33);
  CsrMatrix a = CooToCsr(coo);
  CsrMatrix c = SpGemmCsr(a, a);
  DensityMap map = DensityMap::FromCsr(a, 32);
  DensityMap est = EstimateProductDensity(map, map);
  const double estimated = est.ExpectedNnz();
  const double actual = static_cast<double>(c.nnz());
  EXPECT_GT(estimated, 0.5 * actual);
  EXPECT_LT(estimated, 2.0 * actual);
}

TEST(EstimatorTest, RectangularShapes) {
  DensityMap a(30, 50, 16);  // 2x4 grid
  DensityMap b(50, 10, 16);  // 4x1 grid
  for (index_t bk = 0; bk < a.grid_cols(); ++bk) a.Set(0, bk, 0.2);
  for (index_t bk = 0; bk < b.grid_rows(); ++bk) b.Set(bk, 0, 0.3);
  DensityMap c = EstimateProductDensity(a, b);
  EXPECT_EQ(c.rows(), 30);
  EXPECT_EQ(c.cols(), 10);
  EXPECT_GT(c.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 0.0);
}

TEST(EstimateMemoryTest, ThresholdControlsRepresentationMix) {
  DensityMap map(32, 32, 16);  // 2x2 grid of 16x16 blocks
  map.Set(0, 0, 1.0);
  map.Set(0, 1, 0.1);
  map.Set(1, 0, 0.0);
  map.Set(1, 1, 0.5);
  // Threshold above 1.0: everything sparse.
  const double sparse_all = (1.0 + 0.1 + 0.0 + 0.5) * 256 * 16;
  EXPECT_EQ(EstimateMemoryBytes(map, 1.1),
            static_cast<std::size_t>(sparse_all));
  // Threshold 0.4: blocks (0,0) and (1,1) dense.
  const double mixed = 2 * 256 * 8 + (0.1 + 0.0) * 256 * 16;
  EXPECT_EQ(EstimateMemoryBytes(map, 0.4),
            static_cast<std::size_t>(mixed));
}

}  // namespace
}  // namespace atmx
