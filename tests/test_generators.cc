#include <gtest/gtest.h>

#include <cmath>

#include "gen/rmat.h"
#include "gen/synthetic.h"
#include "gen/workloads.h"
#include "storage/convert.h"

namespace atmx {
namespace {

TEST(RmatTest, ExactNnzAndBounds) {
  RmatParams params;
  params.rows = 100;
  params.cols = 80;
  params.nnz = 500;
  params.seed = 1;
  CooMatrix coo = GenerateRmat(params);
  EXPECT_EQ(coo.rows(), 100);
  EXPECT_EQ(coo.cols(), 80);
  EXPECT_EQ(coo.nnz(), 500);
  for (const CooEntry& e : coo.entries()) {
    EXPECT_GE(e.row, 0);
    EXPECT_LT(e.row, 100);
    EXPECT_GE(e.col, 0);
    EXPECT_LT(e.col, 80);
  }
}

TEST(RmatTest, DeterministicInSeed) {
  RmatParams params;
  params.rows = params.cols = 64;
  params.nnz = 300;
  params.seed = 7;
  CooMatrix a = GenerateRmat(params);
  CooMatrix b = GenerateRmat(params);
  EXPECT_EQ(a.entries().size(), b.entries().size());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i], b.entries()[i]);
  }
}

TEST(RmatTest, SkewConcentratesInUpperLeft) {
  RmatParams uniform;
  uniform.rows = uniform.cols = 256;
  uniform.nnz = 4000;
  uniform.seed = 2;
  RmatParams skewed = uniform;
  skewed.a = 0.73;
  skewed.b = 0.09;
  skewed.c = 0.09;

  auto upper_left_fraction = [](const CooMatrix& coo) {
    index_t count = 0;
    for (const CooEntry& e : coo.entries()) {
      if (e.row < coo.rows() / 2 && e.col < coo.cols() / 2) ++count;
    }
    return static_cast<double>(count) / coo.nnz();
  };
  const double f_uniform = upper_left_fraction(GenerateRmat(uniform));
  const double f_skewed = upper_left_fraction(GenerateRmat(skewed));
  EXPECT_NEAR(f_uniform, 0.25, 0.06);
  // Rejection of duplicates flattens the skew at this density; the
  // concentration is still unmistakable versus the uniform 0.25.
  EXPECT_GT(f_skewed, 0.42);
}

TEST(SyntheticTest, UniformExactCount) {
  CooMatrix coo = GenerateUniform(50, 60, 700, 3);
  EXPECT_EQ(coo.nnz(), 700);
  EXPECT_NEAR(coo.Density(), 700.0 / 3000.0, 1e-12);
}

TEST(SyntheticTest, BandedStaysInBand) {
  CooMatrix coo = GenerateBanded(100, 5, 0.5, 4);
  for (const CooEntry& e : coo.entries()) {
    EXPECT_LE(std::abs(e.row - e.col), 5);
  }
  // Diagonal always present.
  DenseMatrix d = CooToDense(coo);
  for (index_t i = 0; i < 100; ++i) EXPECT_NE(d.At(i, i), 0.0);
}

TEST(SyntheticTest, BandedBlocksContainDenseBlocklets) {
  CooMatrix coo = GenerateBandedBlocks(60, 8, 0.2, 6, 5);
  DenseMatrix d = CooToDense(coo);
  // Every diagonal 6x6 blocklet is fully populated.
  for (index_t s = 0; s + 6 <= 60; s += 6) {
    for (index_t i = s; i < s + 6; ++i) {
      for (index_t j = s; j < s + 6; ++j) {
        EXPECT_NE(d.At(i, j), 0.0) << i << "," << j;
      }
    }
  }
}

TEST(SyntheticTest, DiagonalDenseBlocksTopology) {
  CooMatrix coo = GenerateDiagonalDenseBlocks(128, 4, 16, 1.0, 0, 6);
  DenseMatrix d = CooToDense(coo);
  // Block starts at multiples of 32.
  for (index_t bk = 0; bk < 4; ++bk) {
    const index_t s = bk * 32;
    for (index_t i = s; i < s + 16; ++i) {
      for (index_t j = s; j < s + 16; ++j) {
        EXPECT_NE(d.At(i, j), 0.0);
      }
    }
  }
  EXPECT_EQ(coo.nnz(), 4 * 16 * 16);
}

TEST(SyntheticTest, HamiltonianIsSymmetricInStructure) {
  CooMatrix coo = GenerateHamiltonian(120, 6, 0.5, 0.4, 0.2, 7);
  EXPECT_GT(coo.nnz(), 0);
  // Block-level symmetry: if block (i,j) has content then so does (j,i).
  // (Element-level randomness differs; we check coarse 20x20 regions.)
  DenseMatrix d = CooToDense(coo);
  for (index_t bi = 0; bi < 6; ++bi) {
    for (index_t bj = 0; bj < 6; ++bj) {
      index_t count_ij = 0, count_ji = 0;
      for (index_t i = 0; i < 20; ++i) {
        for (index_t j = 0; j < 20; ++j) {
          count_ij += d.At(bi * 20 + i, bj * 20 + j) != 0.0;
          count_ji += d.At(bj * 20 + i, bi * 20 + j) != 0.0;
        }
      }
      EXPECT_EQ(count_ij > 0, count_ji > 0) << bi << "," << bj;
    }
  }
}

TEST(SyntheticTest, ScaleFreeHasDenseCore) {
  CooMatrix coo = GenerateScaleFreeCorrelation(200, 3000, 0.9, 8);
  EXPECT_EQ(coo.nnz(), 3000);
  index_t core = 0;
  for (const CooEntry& e : coo.entries()) {
    if (e.row < 50 && e.col < 50) ++core;
  }
  // The top quarter of ids holds far more than 1/16 of the elements.
  EXPECT_GT(static_cast<double>(core) / coo.nnz(), 0.2);
}

TEST(SyntheticTest, FullDenseIsFull) {
  DenseMatrix d = GenerateFullDense(20, 30, 9);
  EXPECT_EQ(d.CountNonZeros(), 600);
}

TEST(WorkloadTest, RegistryMatchesTable1) {
  const auto& specs = Table1Specs();
  ASSERT_EQ(specs.size(), 18u);
  EXPECT_EQ(specs[0].id, "R1");
  EXPECT_EQ(specs[8].id, "R9");
  EXPECT_EQ(specs[9].id, "G1");
  EXPECT_EQ(specs[17].id, "G9");
  EXPECT_EQ(FindWorkload("R3").full_dim, 38120);
  EXPECT_NEAR(FindWorkload("R1").FullDensity(), 0.148, 0.005);
  EXPECT_NEAR(FindWorkload("G5").rmat_a, 0.61, 1e-12);
}

TEST(WorkloadTest, ScaledGenerationPreservesDensityClass) {
  for (const char* id : {"R3", "R7"}) {
    CooMatrix coo = MakeWorkloadMatrix(id, 0.02);
    const WorkloadSpec& spec = FindWorkload(id);
    EXPECT_GT(coo.nnz(), 0) << id;
    // Density within a factor ~6 of Table I: surrogates are approximate,
    // and at tiny scales the banded generators cannot drop below one
    // diagonal element per row.
    const double rho = coo.Density();
    EXPECT_GT(rho, spec.FullDensity() / 6.0) << id;
    EXPECT_LT(rho, spec.FullDensity() * 6.0) << id;
  }
}

TEST(WorkloadTest, RmatScalingPreservesCollisionParameter) {
  // The G series scales nnz with scale^1.5 so that the self-product's
  // expected contributions per output cell, (nnz/n)^2 / n, match the
  // full-scale experiment (see workloads.cc).
  const WorkloadSpec& spec = FindWorkload("G1");
  const double full_lambda =
      std::pow(spec.full_nnz / spec.full_dim, 2.0) / spec.full_dim;
  for (double scale : {0.02, 0.05}) {
    CooMatrix coo = MakeWorkloadMatrix("G1", scale);
    const double n = static_cast<double>(coo.rows());
    const double lambda =
        std::pow(static_cast<double>(coo.nnz()) / n, 2.0) / n;
    EXPECT_NEAR(lambda, full_lambda, full_lambda * 0.25) << scale;
  }
}

TEST(WorkloadTest, DeterministicAcrossCalls) {
  CooMatrix a = MakeWorkloadMatrix("G3", 0.01);
  CooMatrix b = MakeWorkloadMatrix("G3", 0.01);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (index_t i = 0; i < a.nnz(); ++i) {
    EXPECT_EQ(a.entries()[i], b.entries()[i]);
  }
}

}  // namespace
}  // namespace atmx
