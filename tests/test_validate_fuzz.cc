// Property/fuzz harness for the structural validators: build a valid
// AT MATRIX from a random workload, inject one targeted corruption, and
// assert the validator reports it as a Status error (never UB, never an
// abort — the injections below are all constructible through public APIs
// without tripping the constructors' own size checks).

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"
#include "validate/debug_hooks.h"
#include "validate/validate.h"

namespace atmx {
namespace {

using ::atmx::testing::RandomCoo;

constexpr int kCorruptionKinds = 8;

const char* CorruptionName(int kind) {
  switch (kind) {
    case 0:
      return "unsorted col_idx";
    case 1:
      return "non-monotone row_ptr";
    case 2:
      return "out-of-range column index";
    case 3:
      return "overlapping tile";
    case 4:
      return "missing tile";
    case 5:
      return "shifted tile";
    case 6:
      return "stale density-map count";
    case 7:
      return "stale tile nnz";
  }
  return "?";
}

// Builds a fresh valid AT MATRIX for one fuzz round.
ATMatrix BuildSubject(std::uint64_t seed, const AtmConfig& config) {
  Rng rng(seed);
  const index_t rows = 32 + static_cast<index_t>(rng.NextBounded(96));
  const index_t cols = 32 + static_cast<index_t>(rng.NextBounded(96));
  const index_t nnz = static_cast<index_t>(
      1 + rng.NextBounded(static_cast<std::uint64_t>(rows * cols / 4)));
  return PartitionToAtm(RandomCoo(rows, cols, nnz, rng.Next()), config);
}

// Index of a sparse tile with >= 2 stored elements in one row, or -1.
index_t FindMultiElementSparseRow(const ATMatrix& m, index_t* row_out) {
  for (index_t ti = 0; ti < m.num_tiles(); ++ti) {
    const Tile& t = m.tiles()[ti];
    if (t.is_dense()) continue;
    for (index_t i = 0; i < t.sparse().rows(); ++i) {
      if (t.sparse().RowNnz(i) >= 2) {
        *row_out = i;
        return ti;
      }
    }
  }
  return -1;
}

// Index of a sparse tile with at least one stored element, or -1.
index_t FindNonEmptySparseTile(const ATMatrix& m) {
  for (index_t ti = 0; ti < m.num_tiles(); ++ti) {
    if (!m.tiles()[ti].is_dense() && m.tiles()[ti].nnz() > 0) return ti;
  }
  return -1;
}

// Applies corruption `kind` in place (rebuilding the matrix where the
// corruption changes tile extents). Returns false when the subject has no
// site for this corruption (e.g. no sparse tile with a 2-element row).
bool InjectCorruption(int kind, ATMatrix* m, Rng* rng) {
  switch (kind) {
    case 0: {  // unsorted col_idx: swap two neighbors within a row
      index_t row = 0;
      const index_t ti = FindMultiElementSparseRow(*m, &row);
      if (ti < 0) return false;
      const CsrMatrix& s = m->tiles()[ti].sparse();
      auto col_idx = s.col_idx();
      const index_t p = s.row_ptr()[row];
      std::swap(col_idx[p], col_idx[p + 1]);
      m->mutable_tiles()[ti].mutable_sparse() =
          CsrMatrix(s.rows(), s.cols(), s.row_ptr(), std::move(col_idx),
                    s.values());
      return true;
    }
    case 1: {  // non-monotone row_ptr: decrease an interior entry
      const index_t ti = FindNonEmptySparseTile(*m);
      if (ti < 0) return false;
      const CsrMatrix& s = m->tiles()[ti].sparse();
      if (s.rows() < 2) return false;
      auto row_ptr = s.row_ptr();
      // Find an interior entry that can move below its predecessor.
      for (std::size_t i = 1; i + 1 < row_ptr.size(); ++i) {
        if (row_ptr[i] > 0) {
          row_ptr[i] = -1;
          m->mutable_tiles()[ti].mutable_sparse() =
              CsrMatrix(s.rows(), s.cols(), std::move(row_ptr), s.col_idx(),
                        s.values());
          return true;
        }
      }
      return false;
    }
    case 2: {  // out-of-range column index
      const index_t ti = FindNonEmptySparseTile(*m);
      if (ti < 0) return false;
      const CsrMatrix& s = m->tiles()[ti].sparse();
      auto col_idx = s.col_idx();
      const std::size_t p = static_cast<std::size_t>(
          rng->NextBounded(static_cast<std::uint64_t>(col_idx.size())));
      col_idx[p] = s.cols() + static_cast<index_t>(rng->NextBounded(8));
      m->mutable_tiles()[ti].mutable_sparse() =
          CsrMatrix(s.rows(), s.cols(), s.row_ptr(), std::move(col_idx),
                    s.values());
      return true;
    }
    case 3: {  // overlapping tile: duplicate one
      if (m->num_tiles() == 0) return false;
      std::vector<Tile> tiles(m->tiles().begin(), m->tiles().end());
      tiles.push_back(tiles[static_cast<std::size_t>(
          rng->NextBounded(static_cast<std::uint64_t>(tiles.size())))]);
      validate_debug::ScopedDisableValidation no_hooks;
      *m = ATMatrix(m->rows(), m->cols(), m->b_atomic(), std::move(tiles),
                    m->density_map());
      return true;
    }
    case 4: {  // missing tile: drop one
      if (m->num_tiles() < 2) return false;
      std::vector<Tile> tiles(m->tiles().begin(), m->tiles().end());
      tiles.erase(tiles.begin() +
                  static_cast<std::ptrdiff_t>(rng->NextBounded(
                      static_cast<std::uint64_t>(tiles.size()))));
      validate_debug::ScopedDisableValidation no_hooks;
      *m = ATMatrix(m->rows(), m->cols(), m->b_atomic(), std::move(tiles),
                    m->density_map());
      return true;
    }
    case 5: {  // shifted tile: move a tile's origin by one row
      if (m->num_tiles() == 0) return false;
      std::vector<Tile> tiles(m->tiles().begin(), m->tiles().end());
      const std::size_t pick = static_cast<std::size_t>(
          rng->NextBounded(static_cast<std::uint64_t>(tiles.size())));
      const Tile& t = tiles[pick];
      const index_t new_row0 = t.row0() > 0 ? t.row0() - 1 : t.row0() + 1;
      tiles[pick] = t.is_dense()
                        ? Tile::MakeDense(new_row0, t.col0(), t.dense())
                        : Tile::MakeSparse(new_row0, t.col0(), t.sparse());
      validate_debug::ScopedDisableValidation no_hooks;
      *m = ATMatrix(m->rows(), m->cols(), m->b_atomic(), std::move(tiles),
                    m->density_map());
      return true;
    }
    case 6: {  // stale density-map count: perturb one cell
      DensityMap map = m->density_map();
      if (map.grid_rows() == 0 || map.grid_cols() == 0) return false;
      const index_t bi = static_cast<index_t>(
          rng->NextBounded(static_cast<std::uint64_t>(map.grid_rows())));
      const index_t bj = static_cast<index_t>(
          rng->NextBounded(static_cast<std::uint64_t>(map.grid_cols())));
      // Shift the implied count by at least one element.
      const double delta =
          2.0 / static_cast<double>(map.BlockArea(bi, bj));
      map.Set(bi, bj, map.At(bi, bj) > 0.5 ? map.At(bi, bj) - delta
                                           : map.At(bi, bj) + delta);
      validate_debug::ScopedDisableValidation no_hooks;
      *m = ATMatrix(m->rows(), m->cols(), m->b_atomic(),
                    std::vector<Tile>(m->tiles().begin(), m->tiles().end()),
                    std::move(map));
      return true;
    }
    case 7: {  // stale tile nnz: blank a stored element behind the back
      const index_t ti = FindNonEmptySparseTile(*m);
      if (ti < 0) return false;
      Tile& t = m->mutable_tiles()[ti];
      t.mutable_sparse().mutable_values()[0] = 0.0;
      // A zeroed stored value is still *stored*, so nnz bookkeeping stays
      // consistent; truly desync it by dropping the element.
      const CsrMatrix& s = t.sparse();
      auto row_ptr = s.row_ptr();
      auto col_idx = s.col_idx();
      auto values = s.values();
      col_idx.erase(col_idx.begin());
      values.erase(values.begin());
      for (auto& p : row_ptr) {
        if (p > 0) --p;
      }
      t.mutable_sparse() = CsrMatrix(s.rows(), s.cols(), std::move(row_ptr),
                                     std::move(col_idx), std::move(values));
      return true;
    }
  }
  return false;
}

TEST(ValidateFuzzTest, EveryInjectedCorruptionIsCaught) {
  AtmConfig config;
  config.b_atomic = 16;
  int injected[kCorruptionKinds] = {};
  int skipped = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    for (int kind = 0; kind < kCorruptionKinds; ++kind) {
      ATMatrix subject = BuildSubject(seed * 977 + 11, config);
      ASSERT_TRUE(ValidateAtMatrix(subject).ok())
          << "seed " << seed << " produced an invalid baseline";
      Rng rng(seed * 131 + static_cast<std::uint64_t>(kind));
      if (!InjectCorruption(kind, &subject, &rng)) {
        ++skipped;
        continue;
      }
      ++injected[kind];
      const Status s = ValidateAtMatrix(subject);
      EXPECT_FALSE(s.ok()) << "corruption '" << CorruptionName(kind)
                           << "' undetected at seed " << seed;
    }
  }
  // The generator parameters must actually exercise every corruption kind.
  for (int kind = 0; kind < kCorruptionKinds; ++kind) {
    EXPECT_GT(injected[kind], 0)
        << "no subject offered a site for '" << CorruptionName(kind) << "'";
  }
  // Sanity: skips should be the exception, not the rule.
  EXPECT_LT(skipped, 40 * kCorruptionKinds / 2);
}

// Corrupt CSR matrices in isolation across many random shapes: the
// validator must flag every mutation class without crashing.
TEST(ValidateFuzzTest, CsrMutationsAreCaught) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 389 + 7);
    const index_t rows = 2 + static_cast<index_t>(rng.NextBounded(30));
    const index_t cols = 2 + static_cast<index_t>(rng.NextBounded(30));
    const index_t want = 4 + static_cast<index_t>(
                             rng.NextBounded(static_cast<std::uint64_t>(
                                 rows * cols / 2)));
    const CsrMatrix m = CooToCsr(RandomCoo(rows, cols, want, rng.Next()));
    if (m.nnz() == 0) continue;
    ASSERT_TRUE(ValidateCsr(m).ok());

    const std::size_t p = static_cast<std::size_t>(
        rng.NextBounded(static_cast<std::uint64_t>(m.nnz())));
    switch (rng.NextBounded(3)) {
      case 0: {  // out-of-range column
        auto col_idx = m.col_idx();
        col_idx[p] = cols + 1;
        EXPECT_FALSE(ValidateCsr(CsrMatrix(rows, cols, m.row_ptr(),
                                           std::move(col_idx), m.values()))
                         .ok());
        break;
      }
      case 1: {  // negative column
        auto col_idx = m.col_idx();
        col_idx[p] = -1;
        EXPECT_FALSE(ValidateCsr(CsrMatrix(rows, cols, m.row_ptr(),
                                           std::move(col_idx), m.values()))
                         .ok());
        break;
      }
      case 2: {  // non-finite value
        auto values = m.values();
        values[p] = std::numeric_limits<double>::infinity();
        EXPECT_FALSE(ValidateCsr(CsrMatrix(rows, cols, m.row_ptr(),
                                           m.col_idx(), std::move(values)))
                         .ok());
        break;
      }
    }
  }
}

}  // namespace
}  // namespace atmx
