#include "ops/retile.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

AtmConfig RetileConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  return config;
}

TEST(RetileTest, ContentPreservedAfterColumnSplit) {
  AtmConfig config = RetileConfig();
  CooMatrix coo = GenerateDiagonalDenseBlocks(96, 3, 16, 0.9, 300, 1);
  ATMatrix atm = PartitionToAtm(coo, config);
  ATMatrix split = RetileColumns(atm, {10, 40, 70}, config);
  EXPECT_TRUE(split.CheckValid());
  EXPECT_EQ(split.nnz(), atm.nnz());
  ExpectDenseNear(CsrToDense(atm.ToCsr()), CsrToDense(split.ToCsr()), 0.0);
  EXPECT_GE(split.num_tiles(), atm.num_tiles());
}

TEST(RetileTest, BoundariesBecomeColBands) {
  AtmConfig config = RetileConfig();
  CooMatrix coo = RandomCoo(64, 64, 300, 2);  // melts into one tile
  ATMatrix atm = PartitionToAtm(coo, config);
  ASSERT_EQ(atm.num_tiles(), 1);
  ATMatrix split = RetileColumns(atm, {16, 48}, config);
  EXPECT_EQ(split.num_tiles(), 3);
  const auto& bounds = split.col_bounds();
  EXPECT_NE(std::find(bounds.begin(), bounds.end(), 16), bounds.end());
  EXPECT_NE(std::find(bounds.begin(), bounds.end(), 48), bounds.end());
}

TEST(RetileTest, NoCutsIsIdentityTiling) {
  AtmConfig config = RetileConfig();
  CooMatrix coo = RandomCoo(48, 48, 200, 3);
  ATMatrix atm = PartitionToAtm(coo, config);
  ATMatrix same = RetileColumns(atm, {0, 48, 100}, config);
  EXPECT_EQ(same.num_tiles(), atm.num_tiles());
}

TEST(RetileTest, PreservesRepresentations) {
  AtmConfig config = RetileConfig();
  CooMatrix coo = GenerateDiagonalDenseBlocks(64, 2, 16, 0.95, 150, 4);
  ATMatrix atm = PartitionToAtm(coo, config);
  const index_t dense_before = atm.NumDenseTiles();
  ATMatrix split = RetileColumns(atm, {8, 24, 40, 56}, config);
  // Dense tiles stay dense after slicing (representation preserved).
  EXPECT_GE(split.NumDenseTiles(),
            dense_before > 0 ? static_cast<index_t>(1) : 0);
  ExpectDenseNear(CsrToDense(atm.ToCsr()), CsrToDense(split.ToCsr()), 0.0);
}

TEST(RetileTest, AlignContractionRemovesSlicing) {
  // A single-tile hypersparse A against a B tiled into k bands: after
  // AlignContraction every pair covers full tiles of A.
  AtmConfig config = RetileConfig();
  CooMatrix a_coo = RandomCoo(128, 128, 400, 5);   // melts into one tile
  CooMatrix b_coo = GenerateDiagonalDenseBlocks(128, 4, 16, 0.9, 200, 6);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix b = PartitionToAtm(b_coo, config);
  ATMatrix aligned = AlignContraction(a, b, config);
  EXPECT_TRUE(aligned.CheckValid());
  // Every aligned tile's column extent lies inside one B row band.
  for (const Tile& t : aligned.tiles()) {
    const auto& bands = b.row_bounds();
    const auto it = std::upper_bound(bands.begin(), bands.end(), t.col0());
    ASSERT_NE(it, bands.begin());
    EXPECT_LE(t.col_end(), *it);
  }
  // Multiplication result unchanged.
  AtMult op(config);
  ATMatrix c1 = op.Multiply(a, b);
  ATMatrix c2 = op.Multiply(aligned, b);
  ExpectDenseNear(CsrToDense(c1.ToCsr()), CsrToDense(c2.ToCsr()), 1e-10);
}

}  // namespace
}  // namespace atmx
