// Embedded stats endpoint: the pure request->response mapping, the
// Start/Stop lifecycle on an ephemeral port, the HTTP client half
// (ParseHttpUrl/HttpGet), and a real client round-trip against a live
// listener.

#include "obs/stats_server.h"

#include <gtest/gtest.h>

#include <string>

#include "common/status.h"
#include "obs/exposition.h"
#include "obs/json_util.h"
#include "obs/metrics.h"

namespace atmx {
namespace {

using obs::HttpGet;
using obs::HttpUrl;
using obs::MetricsRegistry;
using obs::ParseHttpUrl;
using obs::StatsServer;

// The status line and the body of a HandleRequest response.
std::string StatusLine(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string Body(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

// --- HandleRequest (pure). ------------------------------------------------

TEST(HandleRequestTest, MetricsRouteServesOpenMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("req.count").Add(5);
  const std::string response =
      StatsServer::HandleRequest("GET /metrics HTTP/1.0\r\n\r\n", registry);
  EXPECT_EQ(StatusLine(response), "HTTP/1.0 200 OK");
  EXPECT_NE(response.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_EQ(Body(response), obs::RenderOpenMetrics(registry.Snapshot()));
}

TEST(HandleRequestTest, MetricsJsonRouteServesToJson) {
  MetricsRegistry registry;
  registry.GetGauge("req.gauge").Set(1.5);
  const std::string response = StatsServer::HandleRequest(
      "GET /metrics.json HTTP/1.0\r\n\r\n", registry);
  EXPECT_EQ(StatusLine(response), "HTTP/1.0 200 OK");
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_EQ(Body(response), registry.ToJson());
}

TEST(HandleRequestTest, HealthAndRootAnswerOk) {
  MetricsRegistry registry;
  for (const char* path : {"/healthz", "/"}) {
    const std::string response = StatsServer::HandleRequest(
        std::string("GET ") + path + " HTTP/1.0\r\n\r\n", registry);
    EXPECT_EQ(StatusLine(response), "HTTP/1.0 200 OK") << path;
    EXPECT_EQ(Body(response), "ok\n") << path;
  }
}

TEST(HandleRequestTest, TraceAndDecisionsAreWellFormedJson) {
  MetricsRegistry registry;
  for (const char* path : {"/trace", "/decisions"}) {
    const std::string response = StatsServer::HandleRequest(
        std::string("GET ") + path + " HTTP/1.0\r\n\r\n", registry);
    EXPECT_EQ(StatusLine(response), "HTTP/1.0 200 OK") << path;
    std::string error;
    EXPECT_TRUE(obs::JsonWellFormed(Body(response), &error))
        << path << ": " << error;
  }
}

TEST(HandleRequestTest, QueryStringIsIgnored) {
  MetricsRegistry registry;
  const std::string response = StatsServer::HandleRequest(
      "GET /healthz?probe=1 HTTP/1.0\r\n\r\n", registry);
  EXPECT_EQ(StatusLine(response), "HTTP/1.0 200 OK");
}

TEST(HandleRequestTest, UnknownRoute404sAndNonGet405s) {
  MetricsRegistry registry;
  EXPECT_EQ(StatusLine(StatsServer::HandleRequest(
                "GET /nope HTTP/1.0\r\n\r\n", registry)),
            "HTTP/1.0 404 Not Found");
  EXPECT_EQ(StatusLine(StatsServer::HandleRequest(
                "POST /metrics HTTP/1.0\r\n\r\n", registry)),
            "HTTP/1.0 405 Method Not Allowed");
  EXPECT_EQ(StatusLine(StatsServer::HandleRequest("garbage", registry)),
            "HTTP/1.0 405 Method Not Allowed");
}

// --- ParseHttpUrl. --------------------------------------------------------

TEST(ParseHttpUrlTest, AcceptsSchemeHostPortPath) {
  Result<HttpUrl> url = ParseHttpUrl("http://127.0.0.1:9100/metrics.json");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().host, "127.0.0.1");
  EXPECT_EQ(url.value().port, 9100);
  EXPECT_EQ(url.value().path, "/metrics.json");
}

TEST(ParseHttpUrlTest, SchemeOptionalPathDefaultsToRoot) {
  Result<HttpUrl> url = ParseHttpUrl("localhost:8080");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url.value().host, "localhost");
  EXPECT_EQ(url.value().port, 8080);
  EXPECT_EQ(url.value().path, "/");
}

TEST(ParseHttpUrlTest, RejectsMissingPortBadPortAndOtherSchemes) {
  EXPECT_FALSE(ParseHttpUrl("http://127.0.0.1/metrics").ok());
  EXPECT_FALSE(ParseHttpUrl("http://127.0.0.1:notaport/").ok());
  EXPECT_FALSE(ParseHttpUrl("http://127.0.0.1:70000/").ok());
  EXPECT_FALSE(ParseHttpUrl("https://127.0.0.1:443/").ok());
  EXPECT_FALSE(ParseHttpUrl("").ok());
}

// --- Live server lifecycle + client round-trip. ---------------------------

TEST(StatsServerTest, StartOnEphemeralPortServeAndStop) {
  MetricsRegistry registry;
  registry.GetCounter("live.requests").Add(3);
  StatsServer server;
  StatsServer::Options options;
  options.registry = &registry;
  ASSERT_TRUE(server.Start(options).ok());
  EXPECT_TRUE(server.running());
  const int port = server.port();
  ASSERT_GT(port, 0);

  Result<std::string> body = HttpGet("127.0.0.1", port, "/metrics.json");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(body.value(), registry.ToJson());

  Result<std::string> health = HttpGet("localhost", port, "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value(), "ok\n");

  // Non-200 surfaces as a Status, not a body.
  EXPECT_FALSE(HttpGet("127.0.0.1", port, "/nope").ok());

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
  EXPECT_FALSE(
      HttpGet("127.0.0.1", port, "/healthz", /*timeout_ms=*/200).ok());
}

TEST(StatsServerTest, RejectsDoubleStartAndBadPortAllowsRestart) {
  MetricsRegistry registry;
  StatsServer server;
  StatsServer::Options options;
  options.registry = &registry;
  options.port = -2;
  EXPECT_FALSE(server.Start(options).ok());
  options.port = 0;
  ASSERT_TRUE(server.Start(options).ok());
  EXPECT_FALSE(server.Start(options).ok());  // already running
  const int first_port = server.port();
  server.Stop();
  server.Stop();  // idempotent
  ASSERT_TRUE(server.Start(options).ok());  // restart after Stop works
  EXPECT_GT(server.port(), 0);
  (void)first_port;
  server.Stop();
}

TEST(StatsServerTest, HttpGetToClosedPortFailsCleanly) {
  // Bind-then-release an ephemeral port so the target is very likely
  // unused, then connect to it: refused, not hung.
  MetricsRegistry registry;
  StatsServer server;
  StatsServer::Options options;
  options.registry = &registry;
  ASSERT_TRUE(server.Start(options).ok());
  const int port = server.port();
  server.Stop();
  Result<std::string> r =
      HttpGet("127.0.0.1", port, "/healthz", /*timeout_ms=*/200);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace atmx
