#include "ops/explain.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::RandomCoo;

AtmConfig ExplainConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;
  return config;
}

TEST(ExplainTest, PlanMatchesExecutionStats) {
  AtmConfig config = ExplainConfig();
  CooMatrix coo = GenerateDiagonalDenseBlocks(96, 3, 16, 0.9, 300, 1);
  ATMatrix atm = PartitionToAtm(coo, config);
  CostModel model;

  MultiplyPlan plan = ExplainMultiply(atm, atm, config, model);
  AtMult op(config, model);
  AtMultStats stats;
  ATMatrix c = op.Multiply(atm, atm, &stats);

  // The plan predicts exactly what execution does.
  EXPECT_EQ(static_cast<index_t>(plan.pairs.size()),
            stats.pair_multiplications);
  EXPECT_EQ(plan.dense_target_tiles, stats.dense_result_tiles);
  EXPECT_EQ(plan.sparse_target_tiles, stats.sparse_result_tiles);
  EXPECT_EQ(plan.planned_conversions,
            stats.sparse_to_dense_conversions +
                stats.dense_to_sparse_conversions);
  EXPECT_DOUBLE_EQ(plan.effective_write_threshold,
                   stats.effective_write_threshold);
  EXPECT_EQ(plan.num_row_bands * plan.num_col_bands, c.num_tiles());
}

TEST(ExplainTest, PredictsConversions) {
  // The conversion scenario from the ATMULT tests: near-threshold sparse
  // tiles against a full dense operand (paper section II-C3).
  AtmConfig config = ExplainConfig();
  config.llc_bytes = 16 * 1024;
  CooMatrix a = GenerateDiagonalDenseBlocks(96, 3, 32, 0.22, 100, 17);
  CooMatrix b = DenseToCoo(GenerateFullDense(96, 96, 18));
  ATMatrix atm_a = PartitionToAtm(a, config);
  ATMatrix atm_b = PartitionToAtm(b, config);
  // Level the tall-skinny panel rate: under the default c_sdd_panel the
  // optimizer correctly keeps A sparse against 96-wide dense windows, but
  // this test exercises the conversion *prediction* machinery.
  CostParams params;
  params.c_sdd_panel = params.c_sdd;
  CostModel model(params);

  MultiplyPlan plan = ExplainMultiply(atm_a, atm_b, config, model);
  EXPECT_GT(plan.planned_conversions, 0);

  AtMult op(config, model);
  AtMultStats stats;
  op.Multiply(atm_a, atm_b, &stats);
  EXPECT_EQ(plan.planned_conversions,
            stats.sparse_to_dense_conversions +
                stats.dense_to_sparse_conversions);
}

TEST(ExplainTest, EstimateFieldsPopulated) {
  AtmConfig config = ExplainConfig();
  CooMatrix coo = RandomCoo(64, 64, 600, 2);
  ATMatrix atm = PartitionToAtm(coo, config);
  MultiplyPlan plan = ExplainMultiply(atm, atm, config);
  EXPECT_GT(plan.estimated_result_nnz, 0.0);
  EXPECT_GT(plan.estimated_result_bytes, 0u);
  EXPECT_GT(plan.total_projected_cost, 0.0);
}

TEST(ExplainTest, ToStringContainsKeySections) {
  AtmConfig config = ExplainConfig();
  CooMatrix coo = GenerateDiagonalDenseBlocks(96, 3, 16, 0.9, 300, 3);
  ATMatrix atm = PartitionToAtm(coo, config);
  MultiplyPlan plan = ExplainMultiply(atm, atm, config);
  const std::string text = plan.ToString(8);
  EXPECT_NE(text.find("MultiplyPlan"), std::string::npos);
  EXPECT_NE(text.find("pair multiplications"), std::string::npos);
  EXPECT_NE(text.find("gemm"), std::string::npos);
  EXPECT_NE(text.find("rho_a"), std::string::npos);
}

TEST(ExplainTest, NoEstimationMeansSparseTargets) {
  AtmConfig config = ExplainConfig();
  config.density_estimation = false;
  CooMatrix coo = RandomCoo(64, 64, 600, 4);
  ATMatrix atm = PartitionToAtm(coo, config);
  MultiplyPlan plan = ExplainMultiply(atm, atm, config);
  EXPECT_EQ(plan.dense_target_tiles, 0);
  EXPECT_EQ(plan.estimated_result_nnz, 0.0);
}

}  // namespace
}  // namespace atmx
