#include "storage/convert.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

TEST(ConvertTest, CooToCsrSumsDuplicates) {
  CooMatrix coo(2, 2);
  coo.Add(0, 1, 1.0);
  coo.Add(0, 1, 2.0);
  CsrMatrix csr = CooToCsr(coo);
  EXPECT_EQ(csr.nnz(), 1);
  EXPECT_DOUBLE_EQ(csr.At(0, 1), 3.0);
}

TEST(ConvertTest, RoundTripCooCsrDense) {
  CooMatrix coo = RandomCoo(37, 53, 300, 77);
  CsrMatrix csr = CooToCsr(coo);
  DenseMatrix dense_direct = CooToDense(coo);
  DenseMatrix dense_via_csr = CsrToDense(csr);
  ExpectDenseNear(dense_direct, dense_via_csr);

  CsrMatrix back = DenseToCsr(dense_direct);
  EXPECT_EQ(back.nnz(), csr.nnz());
  ExpectDenseNear(dense_direct, CsrToDense(back));
}

TEST(ConvertTest, CsrWindowToDense) {
  CooMatrix coo = RandomCoo(20, 20, 120, 3);
  CsrMatrix csr = CooToCsr(coo);
  DenseMatrix full = CsrToDense(csr);
  DenseMatrix window = CsrWindowToDense(csr, 5, 15, 3, 18);
  for (index_t i = 0; i < 10; ++i) {
    for (index_t j = 0; j < 15; ++j) {
      EXPECT_DOUBLE_EQ(window.At(i, j), full.At(i + 5, j + 3));
    }
  }
}

TEST(ConvertTest, DenseWindowToCsr) {
  DenseMatrix m(6, 6);
  m.At(2, 2) = 1.0;
  m.At(3, 4) = 2.0;
  m.At(0, 0) = 9.0;  // outside the window
  CsrMatrix w = DenseWindowToCsr(m.View().Window(2, 2, 3, 3));
  EXPECT_EQ(w.nnz(), 2);
  EXPECT_DOUBLE_EQ(w.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(w.At(1, 2), 2.0);
}

TEST(ConvertTest, CsrToCooRoundTrip) {
  CooMatrix coo = RandomCoo(31, 17, 97, 9);
  CsrMatrix csr = CooToCsr(coo);
  CooMatrix back = CsrToCoo(csr);
  EXPECT_EQ(back.nnz(), csr.nnz());
  ExpectDenseNear(CooToDense(coo), CooToDense(back));
}

TEST(ConvertTest, DenseToCooSkipsZeros) {
  DenseMatrix m(3, 3);
  m.At(1, 1) = 4.0;
  CooMatrix coo = DenseToCoo(m);
  EXPECT_EQ(coo.nnz(), 1);
  EXPECT_EQ(coo.entries()[0].row, 1);
}

TEST(ConvertTest, EmptyMatrices) {
  CooMatrix coo(5, 5);
  CsrMatrix csr = CooToCsr(coo);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_TRUE(csr.CheckValid());
  DenseMatrix dense = CsrToDense(csr);
  EXPECT_EQ(dense.CountNonZeros(), 0);
}

}  // namespace
}  // namespace atmx
