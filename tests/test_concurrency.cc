// Concurrency properties: AtMult::Multiply is const and must be safe to
// call from several threads at once (each operation owns its scheduler,
// conversion cache and stats); the conversion cache must stay consistent
// under concurrent access from worker teams.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "ops/atmult.h"
#include "ops/optimizer.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

TEST(ConcurrencyTest, ParallelMultiplyCallsOnSharedOperator) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;

  CooMatrix a_coo = GenerateDiagonalDenseBlocks(96, 3, 16, 0.9, 300, 1);
  ATMatrix a = PartitionToAtm(a_coo, config);
  CsrMatrix expected = SpGemmCsr(CooToCsr(a_coo), CooToCsr(a_coo));
  DenseMatrix expected_dense = CsrToDense(expected);

  const AtMult op(config);
  constexpr int kCallers = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kCallers; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        ATMatrix c = op.Multiply(a, a);
        if (!c.CheckValid() ||
            MaxAbsDiff(expected_dense, CsrToDense(c.ToCsr())) > 1e-9) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyTest, ConversionCacheUnderContention) {
  CooMatrix coo = RandomCoo(32, 32, 200, 2);
  Tile tile = Tile::MakeSparse(0, 0, CooToCsr(coo));
  ConversionCache cache;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<const DenseMatrix*> results(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      double seconds = 0.0;
      results[t] =
          &cache.GetDense(ConversionCache::kLeft, 5, tile, &seconds);
    });
  }
  for (auto& t : threads) t.join();
  // Exactly one conversion; everyone sees the same payload.
  EXPECT_EQ(cache.sparse_to_dense_count(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
  ExpectDenseNear(CooToDense(coo), *results[0]);
}

TEST(ConcurrencyTest, ManyTeamsManyTinyTasks) {
  // Stress the scheduler with far more tasks than tiles are worth:
  // fixed tiling of a small matrix yields a dense task grid.
  AtmConfig config;
  config.b_atomic = 8;
  config.llc_bytes = 1 << 18;
  config.tiling = TilingMode::kFixed;
  config.num_sockets = 4;
  config.cores_per_socket = 2;
  CooMatrix coo = RandomCoo(128, 128, 1500, 3);
  ATMatrix atm = PartitionToAtm(coo, config);
  EXPECT_EQ(atm.num_tiles(), 256);  // 16x16 grid
  AtMult op(config);
  ATMatrix c = op.Multiply(atm, atm);
  CsrMatrix expected = SpGemmCsr(CooToCsr(coo), CooToCsr(coo));
  ExpectDenseNear(CsrToDense(expected), CsrToDense(c.ToCsr()), 1e-9);
}

}  // namespace
}  // namespace atmx
