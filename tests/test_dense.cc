#include "storage/dense_matrix.h"

#include <gtest/gtest.h>

namespace atmx {
namespace {

TEST(DenseMatrixTest, ZeroInitialized) {
  DenseMatrix m(3, 4);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m.At(i, j), 0.0);
    }
  }
  EXPECT_EQ(m.CountNonZeros(), 0);
}

TEST(DenseMatrixTest, ElementAccessAndDensity) {
  DenseMatrix m(2, 2);
  m.At(0, 1) = 3.0;
  m.At(1, 0) = -1.0;
  EXPECT_EQ(m.CountNonZeros(), 2);
  EXPECT_DOUBLE_EQ(m.Density(), 0.5);
  EXPECT_EQ(m.MemoryBytes(), 4 * sizeof(value_t));
}

TEST(DenseViewTest, WindowSharesLeadingDimension) {
  DenseMatrix m(4, 6);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 6; ++j) m.At(i, j) = i * 10.0 + j;
  }
  DenseView w = m.View().Window(1, 2, 2, 3);
  EXPECT_EQ(w.rows, 2);
  EXPECT_EQ(w.cols, 3);
  EXPECT_EQ(w.ld, 6);
  EXPECT_DOUBLE_EQ(w.At(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(w.At(1, 2), 24.0);
}

TEST(DenseViewTest, NestedWindows) {
  DenseMatrix m(8, 8);
  m.At(5, 5) = 7.0;
  DenseView outer = m.View().Window(2, 2, 6, 6);
  DenseView inner = outer.Window(3, 3, 2, 2);
  EXPECT_DOUBLE_EQ(inner.At(0, 0), 7.0);
}

TEST(DenseMutViewTest, WritesThrough) {
  DenseMatrix m(4, 4);
  DenseMutView w = m.MutView().Window(1, 1, 2, 2);
  w.At(0, 0) = 5.0;
  w.At(1, 1) = 6.0;
  EXPECT_DOUBLE_EQ(m.At(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 2), 6.0);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a(2, 2), b(2, 2);
  a.At(0, 0) = 1.0;
  b.At(0, 0) = 1.5;
  b.At(1, 1) = -0.25;
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 0.5);
}

TEST(DenseMatrixTest, FillAndEquality) {
  DenseMatrix a(2, 3), b(2, 3);
  a.Fill(2.0);
  EXPECT_NE(a, b);
  b.Fill(2.0);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace atmx
