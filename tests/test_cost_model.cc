#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "cost/calibration.h"

namespace atmx {
namespace {

MultiplyShape Shape(index_t m, index_t k, index_t n, double ra, double rb,
                    double rc = 0.1) {
  return {m, k, n, ra, rb, rc};
}

TEST(CostModelTest, DefaultTurnaroundsMatchPaperConfig) {
  CostModel model;
  // sqrt(1/16) = 0.25, the paper's rho0_R.
  EXPECT_NEAR(model.ReadTurnaround(), 0.25, 1e-12);
  // Write turnaround well below the read turnaround (the asymmetry that
  // motivates two thresholds, section III-C).
  EXPECT_LT(model.WriteTurnaround(), model.ReadTurnaround());
  EXPECT_NEAR(model.WriteTurnaround(), 0.03125, 1e-12);
}

TEST(CostModelTest, SparseKernelWinsAtLowDensity) {
  CostModel model;
  const MultiplyShape s = Shape(512, 512, 512, 0.01, 0.01);
  EXPECT_LT(model.ComputeCost(KernelType::kSSS, s),
            model.ComputeCost(KernelType::kDDD, s));
  EXPECT_LT(model.ComputeCost(KernelType::kSDD, s),
            model.ComputeCost(KernelType::kDDD, s));
}

TEST(CostModelTest, DenseKernelWinsAtHighDensity) {
  CostModel model;
  const MultiplyShape s = Shape(512, 512, 512, 0.6, 0.6);
  EXPECT_LT(model.ComputeCost(KernelType::kDDD, s),
            model.ComputeCost(KernelType::kSSS, s));
}

TEST(CostModelTest, CrossoverNearReadTurnaround) {
  CostModel model;
  const double rho0 = model.ReadTurnaround();
  const MultiplyShape below =
      Shape(1024, 1024, 1024, rho0 * 0.5, rho0 * 0.5);
  const MultiplyShape above =
      Shape(1024, 1024, 1024, rho0 * 1.8, rho0 * 1.8);
  EXPECT_LT(model.ComputeCost(KernelType::kSSD, below),
            model.ComputeCost(KernelType::kDDD, below));
  EXPECT_GT(model.ComputeCost(KernelType::kSSD, above),
            model.ComputeCost(KernelType::kDDD, above));
}

TEST(CostModelTest, SparseWriteMoreExpensiveThanDenseWriteForDenseResults) {
  CostModel model;
  // A result that is 20% populated: sparse write pays per intermediate.
  const double intermediates = 0.2 * 512 * 512 * 3;  // 3 updates/element
  EXPECT_GT(model.WriteCost(false, 512, 512, 0.2, intermediates),
            model.WriteCost(true, 512, 512, 0.2, intermediates));
}

TEST(CostModelTest, SparseWriteCheaperForHypersparseResults) {
  CostModel model;
  const double intermediates = 1e-4 * 512 * 512;
  EXPECT_LT(model.WriteCost(false, 512, 512, 1e-4, intermediates),
            model.WriteCost(true, 512, 512, 1e-4, intermediates));
}

TEST(CostModelTest, ConversionCostsScaleWithArea) {
  CostModel model;
  EXPECT_GT(model.ConversionCost(true, 1024, 1024, 0.1),
            model.ConversionCost(true, 256, 256, 0.1));
  EXPECT_GT(model.ConversionCost(false, 512, 512, 0.5),
            model.ConversionCost(false, 512, 512, 0.01));
}

TEST(CostModelTest, MixedKernelsOrderedByOperandDensity) {
  CostModel model;
  // With one hypersparse operand, the kernel that exploits that operand's
  // sparsity must be cheaper than treating it densely.
  const MultiplyShape s = Shape(512, 512, 512, 0.001, 1.0);
  EXPECT_LT(model.ComputeCost(KernelType::kSDD, s),
            model.ComputeCost(KernelType::kDDD, s));
}

TEST(CalibrationTest, ProducesPositiveConstants) {
  CalibrationOptions options;
  options.tile_size = 96;
  options.repetitions = 1;
  CostParams fitted = Calibrate(options);
  EXPECT_GT(fitted.c_ddd, 0.0);
  EXPECT_GT(fitted.c_sdd, 0.0);
  EXPECT_GT(fitted.c_dsd, 0.0);
  EXPECT_GT(fitted.c_ssd, 0.0);
  EXPECT_GT(fitted.sparse_write, 0.0);
  EXPECT_GT(fitted.dense_write, 0.0);
  // The fitted model must still have a read turnaround in (0, 1).
  CostModel model(fitted);
  EXPECT_GT(model.ReadTurnaround(), 0.0);
  EXPECT_LT(model.ReadTurnaround(), 1.0);
}

}  // namespace
}  // namespace atmx
