// Numerical and structural edge cases of ATMULT: identities,
// permutations, cancellation, plain-operand overloads, degenerate shapes.

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

AtmConfig EdgeConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;
  return config;
}

CooMatrix Identity(index_t n) {
  CooMatrix eye(n, n);
  for (index_t i = 0; i < n; ++i) eye.Add(i, i, 1.0);
  return eye;
}

TEST(AtMultEdgeTest, IdentityIsNeutral) {
  AtmConfig config = EdgeConfig();
  CooMatrix a_coo = RandomCoo(48, 48, 400, 1);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix eye = PartitionToAtm(Identity(48), config);
  AtMult op(config);
  ExpectDenseNear(CooToDense(a_coo),
                  CsrToDense(op.Multiply(a, eye).ToCsr()), 1e-12);
  ExpectDenseNear(CooToDense(a_coo),
                  CsrToDense(op.Multiply(eye, a).ToCsr()), 1e-12);
}

TEST(AtMultEdgeTest, PermutationReordersRows) {
  AtmConfig config = EdgeConfig();
  const index_t n = 32;
  CooMatrix perm(n, n);
  for (index_t i = 0; i < n; ++i) perm.Add(i, (i * 7 + 3) % n, 1.0);
  CooMatrix a_coo = RandomCoo(n, n, 150, 2);
  AtMult op(config);
  ATMatrix result = op.Multiply(PartitionToAtm(perm, config),
                                PartitionToAtm(a_coo, config));
  DenseMatrix a_dense = CooToDense(a_coo);
  for (index_t i = 0; i < n; ++i) {
    const index_t src = (i * 7 + 3) % n;
    for (index_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(result.At(i, j), a_dense.At(src, j));
    }
  }
}

TEST(AtMultEdgeTest, CancellationProducesExplicitZeros) {
  // A product entry that sums to exactly zero: with a *sparse* target the
  // entry is kept as a stored zero (CSR pattern semantics, matching the
  // Gustavson baseline); with a dense target the value is simply 0.0 and
  // carries no pattern. Force sparse targets by disabling estimation.
  AtmConfig config = EdgeConfig();
  config.density_estimation = false;  // all result tiles sparse
  CooMatrix a(4, 4);
  a.Add(0, 0, 1.0);
  a.Add(0, 1, -1.0);
  CooMatrix b(4, 4);
  b.Add(0, 2, 5.0);
  b.Add(1, 2, 5.0);
  AtMult op(config);
  ATMatrix c = op.Multiply(PartitionToAtm(a, config),
                           PartitionToAtm(b, config));
  EXPECT_DOUBLE_EQ(c.At(0, 2), 0.0);
  CsrMatrix expected = SpGemmCsr(CooToCsr(a), CooToCsr(b));
  EXPECT_EQ(expected.nnz(), 1);  // the baseline stores the zero
  EXPECT_EQ(c.nnz(), expected.nnz());
}

TEST(AtMultEdgeTest, NegativeValuesAndMixedSigns) {
  AtmConfig config = EdgeConfig();
  CooMatrix a_coo = RandomCoo(40, 40, 350, 3);  // values in [-1, 1)
  ATMatrix a = PartitionToAtm(a_coo, config);
  AtMult op(config);
  ATMatrix c = op.Multiply(a, a);
  CsrMatrix expected = SpGemmCsr(CooToCsr(a_coo), CooToCsr(a_coo));
  ExpectDenseNear(CsrToDense(expected), CsrToDense(c.ToCsr()), 1e-10);
}

TEST(AtMultEdgeTest, PlainCsrOperandOverloads) {
  AtmConfig config = EdgeConfig();
  CooMatrix a_coo = RandomCoo(36, 36, 250, 4);
  CsrMatrix a_csr = CooToCsr(a_coo);
  ATMatrix a_atm = PartitionToAtm(a_coo, config);
  AtMult op(config);
  DenseMatrix expected =
      CsrToDense(SpGemmCsr(a_csr, a_csr));
  ExpectDenseNear(expected, CsrToDense(op.Multiply(a_csr, a_atm).ToCsr()),
                  1e-10);
  ExpectDenseNear(expected, CsrToDense(op.Multiply(a_atm, a_csr).ToCsr()),
                  1e-10);
}

TEST(AtMultEdgeTest, PlainDenseOperandOverloads) {
  AtmConfig config = EdgeConfig();
  CooMatrix a_coo = RandomCoo(30, 24, 200, 5);
  DenseMatrix b_dense = GenerateFullDense(24, 18, 6);
  ATMatrix a_atm = PartitionToAtm(a_coo, config);
  AtMult op(config);
  CsrMatrix expected = SpGemmCsr(CooToCsr(a_coo), DenseToCsr(b_dense));
  ExpectDenseNear(CsrToDense(expected),
                  CsrToDense(op.Multiply(a_atm, b_dense).ToCsr()), 1e-10);
  DenseMatrix c_dense = GenerateFullDense(18, 30, 7);
  ATMatrix b_atm = AtmFromDense(b_dense, config);
  CsrMatrix expected2 = SpGemmCsr(DenseToCsr(c_dense),
                                  DenseToCsr(CooToDense(
                                      atmx::testing::RandomCoo(30, 8, 60,
                                                               8))));
  // dense x ATM overload with a fresh dense LHS.
  ATMatrix rhs = PartitionToAtm(RandomCoo(30, 8, 60, 8), config);
  ExpectDenseNear(CsrToDense(expected2),
                  CsrToDense(op.Multiply(c_dense, rhs).ToCsr()), 1e-10);
}

TEST(AtMultEdgeTest, SingleRowAndSingleColumn) {
  AtmConfig config = EdgeConfig();
  CooMatrix row(1, 64);
  for (index_t j = 0; j < 64; j += 3) row.Add(0, j, 1.0 + j);
  CooMatrix col(64, 1);
  for (index_t i = 0; i < 64; i += 2) col.Add(i, 0, 2.0 - i * 0.1);
  AtMult op(config);
  // (1 x 64) * (64 x 1) = scalar.
  ATMatrix inner = op.Multiply(PartitionToAtm(row, config),
                               PartitionToAtm(col, config));
  EXPECT_EQ(inner.rows(), 1);
  EXPECT_EQ(inner.cols(), 1);
  double expected = 0.0;
  DenseMatrix rd = CooToDense(row);
  DenseMatrix cd = CooToDense(col);
  for (index_t k = 0; k < 64; ++k) expected += rd.At(0, k) * cd.At(k, 0);
  EXPECT_NEAR(inner.At(0, 0), expected, 1e-10);
  // (64 x 1) * (1 x 64) = rank-1 outer product.
  ATMatrix outer = op.Multiply(PartitionToAtm(col, config),
                               PartitionToAtm(row, config));
  EXPECT_EQ(outer.rows(), 64);
  EXPECT_EQ(outer.cols(), 64);
  EXPECT_NEAR(outer.At(0, 0), cd.At(0, 0) * rd.At(0, 0), 1e-12);
}

TEST(AtMultEdgeTest, BlockDiagonalStaysBlockDiagonal) {
  AtmConfig config = EdgeConfig();
  CooMatrix a = GenerateDiagonalDenseBlocks(64, 4, 16, 1.0, 0, 9);
  AtMult op(config);
  ATMatrix c = op.Multiply(PartitionToAtm(a, config),
                           PartitionToAtm(a, config));
  // Off-diagonal blocks of the product must be empty.
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 16; j < 32; ++j) {
      EXPECT_EQ(c.At(i, j), 0.0);
    }
  }
  // Diagonal blocks are fully populated.
  EXPECT_NE(c.At(0, 0), 0.0);
  EXPECT_NE(c.At(17, 30), 0.0);
}

}  // namespace
}  // namespace atmx
