// Tests of the recursive quadtree partitioner (Alg. 1): structural
// validity, content preservation, density-class materialization, melting
// behaviour, tiling modes, and the hypersparse single-tile property.

#include "tile/partitioner.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "gen/synthetic.h"
#include "storage/convert.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

using atmx::testing::RandomCoo;

AtmConfig SmallConfig(index_t b_atomic = 16) {
  AtmConfig config;
  config.b_atomic = b_atomic;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 1;
  return config;
}

void ExpectContentPreserved(const CooMatrix& coo, const ATMatrix& atm) {
  DenseMatrix expected = CooToDense(coo);
  DenseMatrix actual = CsrToDense(atm.ToCsr());
  atmx::testing::ExpectDenseNear(expected, actual, 0.0);
}

TEST(PartitionerTest, PreservesContentOnRandomMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    CooMatrix coo = RandomCoo(100, 100, 800, seed);
    ATMatrix atm = PartitionToAtm(coo, SmallConfig());
    EXPECT_TRUE(atm.CheckValid());
    EXPECT_EQ(atm.nnz(), coo.nnz());
    ExpectContentPreserved(coo, atm);
  }
}

TEST(PartitionerTest, NonPowerOfTwoAndRectangularShapes) {
  for (auto [rows, cols] : std::vector<std::pair<index_t, index_t>>{
           {100, 37}, {33, 129}, {17, 17}, {1, 100}, {100, 1}}) {
    CooMatrix coo = RandomCoo(rows, cols,
                              std::min<index_t>(rows * cols / 4 + 1, 500),
                              static_cast<std::uint64_t>(rows * cols));
    ATMatrix atm = PartitionToAtm(coo, SmallConfig());
    EXPECT_TRUE(atm.CheckValid()) << rows << "x" << cols;
    ExpectContentPreserved(coo, atm);
  }
}

TEST(PartitionerTest, DenseRegionMaterializesAsDenseTile) {
  // One full 16x16 block in an otherwise sparse 64x64 matrix.
  CooMatrix coo(64, 64);
  for (index_t i = 16; i < 32; ++i) {
    for (index_t j = 32; j < 48; ++j) coo.Add(i, j, 1.0);
  }
  coo.Add(0, 0, 1.0);
  coo.Add(60, 5, 1.0);
  ATMatrix atm = PartitionToAtm(coo, SmallConfig(16));
  EXPECT_GE(atm.NumDenseTiles(), 1);
  // The dense tile must be exactly the populated block.
  bool found = false;
  for (const Tile& t : atm.tiles()) {
    if (t.is_dense()) {
      EXPECT_EQ(t.row0(), 16);
      EXPECT_EQ(t.col0(), 32);
      EXPECT_EQ(t.rows(), 16);
      EXPECT_DOUBLE_EQ(t.Density(), 1.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  ExpectContentPreserved(coo, atm);
}

TEST(PartitionerTest, UniformSparseMatrixMeltsIntoOneTile) {
  // Hypersparse uniform: everything below rho_read and within Eq. (2)
  // bounds — the whole matrix must stay one sparse tile (paper, II-B2).
  CooMatrix coo = RandomCoo(200, 200, 400, 9);
  ATMatrix atm = PartitionToAtm(coo, SmallConfig(16));
  EXPECT_EQ(atm.num_tiles(), 1);
  EXPECT_FALSE(atm.tiles()[0].is_dense());
  EXPECT_EQ(atm.tiles()[0].rows(), 200);
  ExpectContentPreserved(coo, atm);
}

TEST(PartitionerTest, SparseMemoryBoundForcesSplit) {
  AtmConfig config = SmallConfig(16);
  config.llc_bytes = 16 * 1024;  // max sparse tile bytes = 5461
  // 2000 elements * 16 B = 32 KB > 5461 B => must split.
  CooMatrix coo = RandomCoo(128, 128, 2000, 4);
  ATMatrix atm = PartitionToAtm(coo, config);
  EXPECT_GT(atm.num_tiles(), 1);
  EXPECT_TRUE(atm.CheckValid());
  ExpectContentPreserved(coo, atm);
}

TEST(PartitionerTest, FixedModeProducesAtomicGrid) {
  AtmConfig config = SmallConfig(16);
  config.tiling = TilingMode::kFixed;
  CooMatrix coo = RandomCoo(64, 64, 500, 7);
  ATMatrix atm = PartitionToAtm(coo, config);
  EXPECT_EQ(atm.num_tiles(), 16);  // 4x4 grid of 16x16 tiles
  for (const Tile& t : atm.tiles()) {
    EXPECT_EQ(t.rows(), 16);
    EXPECT_EQ(t.cols(), 16);
  }
  ExpectContentPreserved(coo, atm);
}

TEST(PartitionerTest, NoneModeKeepsSingleTile) {
  AtmConfig config = SmallConfig(16);
  config.tiling = TilingMode::kNone;
  CooMatrix coo = RandomCoo(64, 64, 3000, 8);  // 73% dense
  ATMatrix atm = PartitionToAtm(coo, config);
  EXPECT_EQ(atm.num_tiles(), 1);
  EXPECT_TRUE(atm.tiles()[0].is_dense());  // above rho_read
  ExpectContentPreserved(coo, atm);
}

TEST(PartitionerTest, MixedTilesDisabledKeepsOperandsSparse) {
  AtmConfig config = SmallConfig(16);
  config.mixed_tiles = false;
  CooMatrix coo(32, 32);
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 16; ++j) coo.Add(i, j, 1.0);
  }
  ATMatrix atm = PartitionToAtm(coo, config);
  EXPECT_EQ(atm.NumDenseTiles(), 0);
  ExpectContentPreserved(coo, atm);
}

TEST(PartitionerTest, StatsComponentsPopulated) {
  CooMatrix coo = RandomCoo(128, 128, 4000, 10);
  PartitionStats stats;
  ATMatrix atm = PartitionToAtm(coo, SmallConfig(16), &stats);
  EXPECT_GE(stats.sort_seconds, 0.0);
  EXPECT_GE(stats.blockcount_seconds, 0.0);
  EXPECT_GE(stats.materialize_seconds, 0.0);
  EXPECT_GT(stats.TotalSeconds(), 0.0);
  EXPECT_EQ(stats.dense_tiles + stats.sparse_tiles, atm.num_tiles());
  EXPECT_NE(stats.ToString().find("dense_tiles"), std::string::npos);
}

TEST(PartitionerTest, DensityMapMatchesContent) {
  CooMatrix coo = RandomCoo(64, 64, 600, 12);
  ATMatrix atm = PartitionToAtm(coo, SmallConfig(16));
  DensityMap expected = DensityMap::FromCoo(coo, 16);
  const DensityMap& actual = atm.density_map();
  ASSERT_EQ(actual.grid_rows(), expected.grid_rows());
  ASSERT_EQ(actual.grid_cols(), expected.grid_cols());
  for (index_t bi = 0; bi < expected.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < expected.grid_cols(); ++bj) {
      EXPECT_NEAR(actual.At(bi, bj), expected.At(bi, bj), 1e-12);
    }
  }
}

TEST(PartitionerTest, HomeNodesRoundRobin) {
  AtmConfig config = SmallConfig(16);
  config.num_sockets = 2;
  config.tiling = TilingMode::kFixed;
  CooMatrix coo = RandomCoo(64, 64, 500, 13);
  ATMatrix atm = PartitionToAtm(coo, config);
  // Fixed 4x4 grid: tiles in row band 0 -> node 0, band 1 -> node 1, ...
  for (const Tile& t : atm.tiles()) {
    const index_t band = t.row0() / 16;
    EXPECT_EQ(t.home_node(), static_cast<int>(band % 2));
  }
}

TEST(PartitionerTest, EmptyMatrix) {
  CooMatrix coo(64, 64);
  ATMatrix atm = PartitionToAtm(coo, SmallConfig(16));
  EXPECT_EQ(atm.nnz(), 0);
  EXPECT_TRUE(atm.CheckValid());
  // All-empty blocks melt into a single sparse tile.
  EXPECT_EQ(atm.num_tiles(), 1);
}

TEST(PartitionerTest, MatrixSmallerThanOneBlock) {
  CooMatrix coo = RandomCoo(7, 9, 20, 14);
  ATMatrix atm = PartitionToAtm(coo, SmallConfig(16));
  EXPECT_EQ(atm.num_tiles(), 1);
  ExpectContentPreserved(coo, atm);
}

TEST(PartitionerTest, WrapperFromCsrAndDense) {
  CooMatrix coo = RandomCoo(48, 48, 300, 15);
  AtmConfig config = SmallConfig(16);
  ATMatrix from_csr = AtmFromCsr(CooToCsr(coo), config);
  ATMatrix from_dense = AtmFromDense(CooToDense(coo), config);
  EXPECT_EQ(from_csr.nnz(), coo.nnz());
  EXPECT_EQ(from_dense.nnz(), coo.nnz());
  ExpectContentPreserved(coo, from_csr);
  ExpectContentPreserved(coo, from_dense);
}

TEST(PartitionerTest, TilesAreAlignedPowerOfTwoSquares) {
  CooMatrix coo = GenerateDiagonalDenseBlocks(256, 4, 32, 0.9, 500, 21);
  ATMatrix atm = PartitionToAtm(coo, SmallConfig(16));
  for (const Tile& t : atm.tiles()) {
    // Every tile's origin is block-aligned and its extent is a
    // power-of-two multiple of the block (clipped at the matrix edge).
    EXPECT_EQ(t.row0() % 16, 0);
    EXPECT_EQ(t.col0() % 16, 0);
    if (t.row_end() != atm.rows()) {
      EXPECT_TRUE(IsPowerOfTwo(t.rows() / 16)) << t.rows();
    }
    if (t.col_end() != atm.cols()) {
      EXPECT_TRUE(IsPowerOfTwo(t.cols() / 16)) << t.cols();
    }
  }
}

}  // namespace
}  // namespace atmx
