#include "topology/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/mutex.h"

namespace atmx {
namespace {

TEST(WorkerTeamTest, SingleThreadRunsInline) {
  WorkerTeam team(0, 1);
  EXPECT_EQ(team.size(), 1);
  int calls = 0;
  team.ParallelRun([&](int idx) {
    EXPECT_EQ(idx, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(WorkerTeamTest, AllThreadsParticipate) {
  WorkerTeam team(0, 4);
  std::vector<std::atomic<int>> hits(4);
  team.ParallelRun([&](int idx) { hits[idx].fetch_add(1); });
  for (int i = 0; i < 4; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerTeamTest, ReusableAcrossJobs) {
  WorkerTeam team(0, 3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    team.ParallelRun([&](int) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 60);
}

TEST(WorkerTeamTest, ParallelForCoversRangeExactlyOnce) {
  WorkerTeam team(1, 4);
  std::vector<std::atomic<int>> hits(1000);
  team.ParallelFor(1000, 17, [&](index_t lo, index_t hi) {
    EXPECT_LE(hi - lo, 17);
    for (index_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerTeamTest, ParallelForEmptyRange) {
  WorkerTeam team(0, 2);
  int calls = 0;
  team.ParallelFor(0, 8, [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(TeamSchedulerTest, StaticModeRunsEveryTaskOnItsHomeTeam) {
  TeamScheduler scheduler(3, 2);
  EXPECT_EQ(scheduler.num_teams(), 3);
  ScheduleOptions options;
  options.work_stealing = false;
  ScheduleStats stats;
  std::vector<std::atomic<int>> runs(30);
  std::vector<std::atomic<int>> team_of(30);
  scheduler.RunTasks(
      30, [](index_t task) { return static_cast<int>(task % 3); },
      [&](WorkerTeam& team, index_t task) {
        runs[task].fetch_add(1);
        team_of[task].store(team.team_id());
      },
      options, &stats);
  for (int t = 0; t < 30; ++t) {
    EXPECT_EQ(runs[t].load(), 1);
    EXPECT_EQ(team_of[t].load(), t % 3);
  }
  EXPECT_EQ(stats.TotalSteals(), 0u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(stats.executed_per_team[t], 10);
  }
}

TEST(TeamSchedulerTest, StealingRunsEveryTaskExactlyOnce) {
  TeamScheduler scheduler(3, 2);
  std::vector<std::atomic<int>> runs(30);
  scheduler.RunTasks(
      30, [](index_t task) { return static_cast<int>(task % 3); },
      [&](WorkerTeam&, index_t task) { runs[task].fetch_add(1); });
  for (int t = 0; t < 30; ++t) EXPECT_EQ(runs[t].load(), 1);
}

TEST(TeamSchedulerTest, TasksCanUseIntraTeamParallelism) {
  TeamScheduler scheduler(2, 3);
  std::atomic<long> total{0};
  scheduler.RunTasks(
      8, [](index_t task) { return static_cast<int>(task % 2); },
      [&](WorkerTeam& team, index_t) {
        team.ParallelFor(100, 10, [&](index_t lo, index_t hi) {
          total.fetch_add(hi - lo);
        });
      });
  EXPECT_EQ(total.load(), 800);
}

TEST(TeamSchedulerTest, NoTasks) {
  TeamScheduler scheduler(2, 1);
  scheduler.RunTasks(
      0, [](index_t) { return 0; },
      [](WorkerTeam&, index_t) { FAIL() << "no task should run"; });
}

TEST(TeamSchedulerTest, TaskGraphRespectsDependencyOrder) {
  // Diamond per lane: 0 -> {1, 2} -> 3 (x4 lanes), plus an independent
  // source. Every task must observe all predecessors completed.
  TeamScheduler scheduler(2, 2);
  constexpr index_t kLanes = 4;
  const index_t num_tasks = kLanes * 4 + 1;
  std::vector<index_t> deps(num_tasks, 0);
  std::vector<std::vector<index_t>> successors(num_tasks);
  for (index_t lane = 0; lane < kLanes; ++lane) {
    const index_t base = lane * 4;
    successors[base] = {base + 1, base + 2};
    deps[base + 1] = 1;
    deps[base + 2] = 1;
    successors[base + 1] = {base + 3};
    successors[base + 2] = {base + 3};
    deps[base + 3] = 2;
  }
  std::vector<std::atomic<int>> done(num_tasks);
  std::vector<std::atomic<int>> runs(num_tasks);
  std::atomic<bool> order_ok{true};
  ScheduleStats stats;
  scheduler.RunTaskGraph(
      num_tasks, deps, successors,
      [](index_t task) { return static_cast<int>(task % 2); },
      [&](WorkerTeam&, index_t task) {
        if (task % 4 != 0 && task < kLanes * 4) {
          const index_t base = (task / 4) * 4;
          if (task % 4 == 3) {
            if (!done[base + 1].load() || !done[base + 2].load()) {
              order_ok.store(false);
            }
          } else if (!done[base].load()) {
            order_ok.store(false);
          }
        }
        runs[task].fetch_add(1);
        done[task].store(1);
      },
      ScheduleOptions(), &stats);
  EXPECT_TRUE(order_ok.load());
  index_t executed = 0;
  for (index_t t = 0; t < num_tasks; ++t) {
    EXPECT_EQ(runs[t].load(), 1) << "task " << t;
    executed += runs[t].load();
  }
  EXPECT_EQ(executed, num_tasks);
  index_t stats_total = 0;
  for (index_t n : stats.executed_per_team) stats_total += n;
  EXPECT_EQ(stats_total, num_tasks);
}

TEST(TeamSchedulerTest, TaskGraphStaticModeRunsChainSequentially) {
  // A pure chain 0 -> 1 -> ... -> 9 with stealing off: only one task is
  // ever ready, so completions must strictly increase.
  TeamScheduler scheduler(3, 1);
  const index_t n = 10;
  std::vector<index_t> deps(n, 1);
  deps[0] = 0;
  std::vector<std::vector<index_t>> successors(n);
  for (index_t t = 0; t + 1 < n; ++t) successors[t] = {t + 1};
  ScheduleOptions options;
  options.work_stealing = false;
  std::vector<index_t> sequence;
  Mutex mu;
  scheduler.RunTaskGraph(
      n, deps, successors,
      [](index_t task) { return static_cast<int>(task % 3); },
      [&](WorkerTeam&, index_t task) {
        MutexLock lock(mu);
        sequence.push_back(task);
      },
      options, nullptr);
  ASSERT_EQ(sequence.size(), static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) EXPECT_EQ(sequence[t], t);
}

TEST(TeamSchedulerTest, TaskGraphAllReadyBehavesLikeRunTasks) {
  TeamScheduler scheduler(2, 1);
  const index_t n = 16;
  std::vector<index_t> deps(n, 0);
  std::vector<std::vector<index_t>> successors(n);
  std::vector<std::atomic<int>> runs(n);
  scheduler.RunTaskGraph(
      n, deps, successors,
      [](index_t task) { return static_cast<int>(task % 2); },
      [&](WorkerTeam&, index_t task) { runs[task].fetch_add(1); },
      ScheduleOptions(), nullptr);
  for (index_t t = 0; t < n; ++t) EXPECT_EQ(runs[t].load(), 1);
}

TEST(TeamSchedulerTest, TaskGraphEmpty) {
  TeamScheduler scheduler(2, 1);
  scheduler.RunTaskGraph(
      0, {}, {}, [](index_t) { return 0; },
      [](WorkerTeam&, index_t) { FAIL() << "no task should run"; },
      ScheduleOptions(), nullptr);
}

TEST(TeamSchedulerTest, TaskGraphAdmitGateLimitsConcurrency) {
  // Admission gate modeling a 1-slot memory budget: only one task may be
  // in flight at a time. Every task must still run exactly once, and the
  // gate's view of concurrency must never exceed the slot count.
  TeamScheduler scheduler(2, 2);
  const index_t n = 24;
  std::vector<index_t> deps(n, 0);
  std::vector<std::vector<index_t>> successors(n);
  std::atomic<int> slots{1};
  std::atomic<bool> over_admitted{false};
  std::vector<std::atomic<int>> runs(n);
  ScheduleOptions options;
  options.admit = [&slots](index_t, bool force) {
    int have = slots.load(std::memory_order_relaxed);
    while (have > 0) {
      if (slots.compare_exchange_weak(have, have - 1,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
    if (force) {
      slots.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  };
  scheduler.RunTaskGraph(
      n, deps, successors,
      [](index_t task) { return static_cast<int>(task % 2); },
      [&](WorkerTeam&, index_t task) {
        if (slots.load(std::memory_order_relaxed) < 0) {
          over_admitted.store(true, std::memory_order_relaxed);
        }
        runs[task].fetch_add(1);
        slots.fetch_add(1, std::memory_order_relaxed);
      },
      options, nullptr);
  for (index_t t = 0; t < n; ++t) EXPECT_EQ(runs[t].load(), 1);
  EXPECT_FALSE(over_admitted.load());
}

TEST(TeamSchedulerTest, TaskGraphAdmitAlwaysRejectFallsBackToForced) {
  // A gate that refuses every speculative admission must not deadlock:
  // whenever nothing is in flight and every queue is drained, the
  // scheduler force-admits the oldest parked task, so the graph still
  // completes — one forced task at a time.
  TeamScheduler scheduler(2, 1);
  const index_t n = 8;
  std::vector<index_t> deps(n, 0);
  std::vector<std::vector<index_t>> successors(n);
  std::atomic<int> forced_count{0};
  std::vector<std::atomic<int>> runs(n);
  ScheduleOptions options;
  options.admit = [&forced_count](index_t, bool force) {
    if (force) {
      forced_count.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  };
  scheduler.RunTaskGraph(
      n, deps, successors,
      [](index_t task) { return static_cast<int>(task % 2); },
      [&](WorkerTeam&, index_t task) { runs[task].fetch_add(1); },
      options, nullptr);
  for (index_t t = 0; t < n; ++t) EXPECT_EQ(runs[t].load(), 1);
  // Every task needed the forced path.
  EXPECT_EQ(forced_count.load(), static_cast<int>(n));
}

TEST(TeamSchedulerTest, TaskGraphAdmitGateHonorsDependencies) {
  // Chain with a flaky gate (rejects each task's first attempt): parked
  // tasks are retried after completions and dependency order still holds.
  TeamScheduler scheduler(2, 2);
  const index_t n = 6;
  std::vector<index_t> deps(n, 1);
  deps[0] = 0;
  std::vector<std::vector<index_t>> successors(n);
  for (index_t t = 0; t + 1 < n; ++t) successors[t] = {t + 1};
  std::vector<std::atomic<int>> attempts(n);
  std::vector<index_t> sequence;
  Mutex mu;
  ScheduleOptions options;
  options.admit = [&attempts](index_t task, bool force) {
    if (force) return true;
    return attempts[task].fetch_add(1, std::memory_order_relaxed) > 0;
  };
  scheduler.RunTaskGraph(
      n, deps, successors,
      [](index_t task) { return static_cast<int>(task % 2); },
      [&](WorkerTeam&, index_t task) {
        MutexLock lock(mu);
        sequence.push_back(task);
      },
      options, nullptr);
  ASSERT_EQ(sequence.size(), static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) EXPECT_EQ(sequence[t], t);
}

}  // namespace
}  // namespace atmx
