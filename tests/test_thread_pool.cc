#include "topology/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace atmx {
namespace {

TEST(WorkerTeamTest, SingleThreadRunsInline) {
  WorkerTeam team(0, 1);
  EXPECT_EQ(team.size(), 1);
  int calls = 0;
  team.ParallelRun([&](int idx) {
    EXPECT_EQ(idx, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(WorkerTeamTest, AllThreadsParticipate) {
  WorkerTeam team(0, 4);
  std::vector<std::atomic<int>> hits(4);
  team.ParallelRun([&](int idx) { hits[idx].fetch_add(1); });
  for (int i = 0; i < 4; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerTeamTest, ReusableAcrossJobs) {
  WorkerTeam team(0, 3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 20; ++round) {
    team.ParallelRun([&](int) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 60);
}

TEST(WorkerTeamTest, ParallelForCoversRangeExactlyOnce) {
  WorkerTeam team(1, 4);
  std::vector<std::atomic<int>> hits(1000);
  team.ParallelFor(1000, 17, [&](index_t lo, index_t hi) {
    EXPECT_LE(hi - lo, 17);
    for (index_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerTeamTest, ParallelForEmptyRange) {
  WorkerTeam team(0, 2);
  int calls = 0;
  team.ParallelFor(0, 8, [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(TeamSchedulerTest, StaticModeRunsEveryTaskOnItsHomeTeam) {
  TeamScheduler scheduler(3, 2);
  EXPECT_EQ(scheduler.num_teams(), 3);
  ScheduleOptions options;
  options.work_stealing = false;
  ScheduleStats stats;
  std::vector<std::atomic<int>> runs(30);
  std::vector<std::atomic<int>> team_of(30);
  scheduler.RunTasks(
      30, [](index_t task) { return static_cast<int>(task % 3); },
      [&](WorkerTeam& team, index_t task) {
        runs[task].fetch_add(1);
        team_of[task].store(team.team_id());
      },
      options, &stats);
  for (int t = 0; t < 30; ++t) {
    EXPECT_EQ(runs[t].load(), 1);
    EXPECT_EQ(team_of[t].load(), t % 3);
  }
  EXPECT_EQ(stats.TotalSteals(), 0u);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(stats.executed_per_team[t], 10);
  }
}

TEST(TeamSchedulerTest, StealingRunsEveryTaskExactlyOnce) {
  TeamScheduler scheduler(3, 2);
  std::vector<std::atomic<int>> runs(30);
  scheduler.RunTasks(
      30, [](index_t task) { return static_cast<int>(task % 3); },
      [&](WorkerTeam&, index_t task) { runs[task].fetch_add(1); });
  for (int t = 0; t < 30; ++t) EXPECT_EQ(runs[t].load(), 1);
}

TEST(TeamSchedulerTest, TasksCanUseIntraTeamParallelism) {
  TeamScheduler scheduler(2, 3);
  std::atomic<long> total{0};
  scheduler.RunTasks(
      8, [](index_t task) { return static_cast<int>(task % 2); },
      [&](WorkerTeam& team, index_t) {
        team.ParallelFor(100, 10, [&](index_t lo, index_t hi) {
          total.fetch_add(hi - lo);
        });
      });
  EXPECT_EQ(total.load(), 800);
}

TEST(TeamSchedulerTest, NoTasks) {
  TeamScheduler scheduler(2, 1);
  scheduler.RunTasks(
      0, [](index_t) { return 0; },
      [](WorkerTeam&, index_t) { FAIL() << "no task should run"; });
}

}  // namespace
}  // namespace atmx
