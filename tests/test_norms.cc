#include "ops/norms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::RandomCoo;

TEST(NormsTest, FrobeniusAgreesAcrossRepresentations) {
  CooMatrix coo = RandomCoo(60, 60, 500, 1);
  CsrMatrix csr = CooToCsr(coo);
  DenseMatrix dense = CooToDense(coo);
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  ATMatrix atm = PartitionToAtm(coo, config);

  const double reference = FrobeniusNorm(dense);
  EXPECT_NEAR(FrobeniusNorm(csr), reference, 1e-10);
  EXPECT_NEAR(FrobeniusNorm(atm), reference, 1e-10);
  EXPECT_GT(reference, 0.0);
}

TEST(NormsTest, KnownSmallMatrix) {
  CooMatrix coo(2, 2);
  coo.Add(0, 0, 3.0);
  coo.Add(1, 1, 4.0);
  CsrMatrix csr = CooToCsr(coo);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(csr), 5.0);
  EXPECT_DOUBLE_EQ(MaxAbsValue(csr), 4.0);
  auto sums = RowSums(csr);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 4.0);
  auto norms = RowNorms(csr);
  EXPECT_DOUBLE_EQ(norms[0], 3.0);
  auto counts = RowNnz(csr);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
}

TEST(NormsTest, MaxAbsHandlesNegatives) {
  CooMatrix coo(3, 3);
  coo.Add(0, 1, -7.5);
  coo.Add(2, 2, 2.0);
  EXPECT_DOUBLE_EQ(MaxAbsValue(CooToCsr(coo)), 7.5);
  AtmConfig config;
  config.b_atomic = 16;
  EXPECT_DOUBLE_EQ(MaxAbsValue(PartitionToAtm(coo, config)), 7.5);
}

TEST(NormsTest, EmptyMatrix) {
  CsrMatrix empty(5, 5);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(empty), 0.0);
  EXPECT_DOUBLE_EQ(MaxAbsValue(empty), 0.0);
}

}  // namespace
}  // namespace atmx
