// Randomized end-to-end property sweep: for many (seed, topology,
// configuration) combinations, the full pipeline — generate, partition,
// estimate, multiply — must (a) keep every structural invariant and
// (b) agree numerically with the plain Gustavson baseline. This is the
// fuzz-style safety net behind the targeted unit tests.

#include <gtest/gtest.h>

#include "gen/rmat.h"
#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;

struct SweepCase {
  std::uint64_t seed;
  int topology;      // 0 uniform, 1 rmat-skew, 2 diag-blocks, 3 banded,
                     // 4 scale-free
  index_t b_atomic;  // 8, 16, 32
  double rho_read;
  double rho_write;
  int teams;
  int threads;
  bool jit;
};

CooMatrix MakeTopology(int topology, index_t n, std::uint64_t seed) {
  switch (topology) {
    case 0:
      return GenerateUniform(n, n, n * 6, seed);
    case 1: {
      RmatParams params;
      params.rows = params.cols = n;
      params.nnz = n * 6;
      params.a = 0.6;
      params.b = 0.15;
      params.c = 0.15;
      params.seed = seed;
      return GenerateRmat(params);
    }
    case 2:
      return GenerateDiagonalDenseBlocks(n, 3, n / 8, 0.9, n * 2, seed);
    case 3:
      return GenerateBanded(n, 6, 0.4, seed);
    default:
      return GenerateScaleFreeCorrelation(n, n * 5, 0.8, seed);
  }
}

class PipelineSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweepTest, PartitionAndMultiplyAgreeWithBaseline) {
  const SweepCase& p = GetParam();
  const index_t n = 96 + static_cast<index_t>(p.seed % 5) * 17;  // 96..164
  CooMatrix coo = MakeTopology(p.topology, n, p.seed);

  AtmConfig config;
  config.b_atomic = p.b_atomic;
  config.llc_bytes = 256 * 1024;
  config.rho_read = p.rho_read;
  config.rho_write = p.rho_write;
  config.num_sockets = p.teams;
  config.cores_per_socket = p.threads;
  config.dynamic_conversion = p.jit;

  PartitionStats pstats;
  ATMatrix atm = PartitionToAtm(coo, config, &pstats);

  // Structural invariants.
  ASSERT_TRUE(atm.CheckValid());
  ASSERT_EQ(atm.nnz(), coo.nnz());
  ASSERT_EQ(pstats.dense_tiles + pstats.sparse_tiles, atm.num_tiles());
  for (const Tile& t : atm.tiles()) {
    if (!t.is_dense()) {
      ASSERT_TRUE(t.sparse().CheckValid());
    }
    ASSERT_GE(t.home_node(), 0);
    ASSERT_LT(t.home_node(), p.teams);
  }

  // Content preserved through partitioning.
  CsrMatrix baseline_input = CooToCsr(coo);
  ExpectDenseNear(CsrToDense(baseline_input), CsrToDense(atm.ToCsr()), 0.0);

  // Multiplication agrees with Gustavson.
  AtMult op(config);
  AtMultStats stats;
  ATMatrix c = op.Multiply(atm, atm, &stats);
  ASSERT_TRUE(c.CheckValid());
  CsrMatrix expected = SpGemmCsr(baseline_input, baseline_input);
  EXPECT_EQ(c.nnz(), expected.nnz());
  ExpectDenseNear(CsrToDense(expected), CsrToDense(c.ToCsr()), 1e-9);

  // The result's density map must be exact.
  DensityMap recomputed = DensityMap::FromCsr(c.ToCsr(), p.b_atomic);
  for (index_t bi = 0; bi < recomputed.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < recomputed.grid_cols(); ++bj) {
      EXPECT_NEAR(c.density_map().At(bi, bj), recomputed.At(bi, bj), 1e-9);
    }
  }
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  std::uint64_t seed = 1000;
  for (int topology = 0; topology < 5; ++topology) {
    for (index_t b : {8, 32}) {
      for (double rho_read : {0.25, 0.7}) {
        cases.push_back(SweepCase{seed++, topology, b, rho_read, 0.03,
                                  1 + topology % 3, 1 + topology % 2,
                                  topology % 2 == 0});
      }
    }
  }
  // A few degenerate-threshold corners.
  cases.push_back(SweepCase{2000, 2, 16, 0.0, 0.0, 2, 2, true});   // all dense
  cases.push_back(SweepCase{2001, 2, 16, 1.01, 1.01, 2, 2, true});  // all sparse
  cases.push_back(SweepCase{2002, 0, 16, 0.25, 0.03, 4, 4, true});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineSweepTest,
                         ::testing::ValuesIn(MakeSweep()));

}  // namespace
}  // namespace atmx
