// TSan-targeted stress for the observability layer's lock protocols: the
// MetricsRegistry registration map (mutex-guarded) under concurrent
// first-use registration and snapshotting, the TraceRecorder's
// registry-then-shard two-lock nesting (append vs Snapshot/Clear — the
// exact interleaving the LOCK ORDER comment in obs/trace.h governs), and
// the DecisionLog ring buffer. Assertions are simple totals; the point is
// that ThreadSanitizer sees every edge of each protocol under schedules a
// single-threaded unit test never produces.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace atmx {
namespace {

using obs::DecisionLog;
using obs::DecisionRecord;
using obs::MetricsRegistry;
using obs::TraceRecorder;

TEST(ObsRaceStressTest, MetricsRegistrationAndUpdatesVsSnapshot) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr int kWriters = 4;
  constexpr int kRounds = 300;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Snapshot and the renderers walk all three maps under the registry
    // mutex while writers are concurrently inserting into them.
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.Snapshot();
      (void)registry.ToJson();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string mine =
          "race_test.writer" + std::to_string(w) + ".count";
      for (int round = 0; round < kRounds; ++round) {
        // Shared name: every thread races the first-use registration.
        registry.GetCounter("race_test.shared.count").Increment();
        // Private name re-looked-up each round: map reads under writes.
        registry.GetCounter(mine).Increment();
        registry.GetGauge("race_test.shared.gauge")
            .Set(static_cast<double>(round));
        registry.GetHistogram("race_test.shared.hist")
            .Observe(static_cast<double>(round % 16));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(registry.GetCounter("race_test.shared.count").Value(),
            static_cast<std::uint64_t>(kWriters) * kRounds);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(registry
                  .GetCounter("race_test.writer" + std::to_string(w) +
                              ".count")
                  .Value(),
              static_cast<std::uint64_t>(kRounds));
  }
  EXPECT_EQ(registry.GetHistogram("race_test.shared.hist").TotalCount(),
            static_cast<std::uint64_t>(kWriters) * kRounds);
}

TEST(ObsRaceStressTest, TraceAppendVsSnapshotAndClear) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable();

  constexpr int kWriters = 4;
  constexpr int kRounds = 400;
  std::atomic<bool> stop{false};

  // Snapshot and Clear take registry_mutex_ and then every shard lock
  // nested inside it; appends take only their own shard lock. This loop
  // races both against fresh-thread buffer registration (each writer's
  // first append) and steady-state appends.
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)recorder.Snapshot();
      (void)recorder.EventCount();
      recorder.Clear();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        const std::int64_t now = TraceRecorder::NowNanos();
        recorder.RecordComplete("race", "span", now, 10,
                                {{"round", round}});
        recorder.RecordInstant("race", "instant", {{"round", round}});
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();
  recorder.Disable();
  recorder.Clear();
  EXPECT_EQ(recorder.EventCount(), 0u);

  // The recorder still works single-threaded after the churn.
  recorder.Enable();
  recorder.RecordInstant("race", "after");
  recorder.Disable();
  EXPECT_EQ(recorder.EventCount(), 1u);
  recorder.Clear();
}

TEST(ObsRaceStressTest, HistogramObserveVsTakeSnapshotStaysCoherent) {
  // Observe orders count -> sum -> bucket and TakeSnapshot reads buckets
  // first, so every concurrent snapshot must satisfy count >= Σbuckets —
  // the invariant the cumulative OpenMetrics rendering (+Inf == _count,
  // non-decreasing series) is built on. Check it on every snapshot taken
  // while writers are mid-Observe, not just at quiescence.
  obs::Histogram hist({1.0, 8.0, 64.0});
  constexpr int kWriters = 4;
  constexpr int kRounds = 20000;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots_checked{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::Histogram::Snapshot snap = hist.TakeSnapshot();
      std::uint64_t bucket_total = 0;
      for (const std::uint64_t b : snap.buckets) bucket_total += b;
      ASSERT_GE(snap.count, bucket_total);
      ASSERT_EQ(snap.buckets.size(), hist.bounds().size() + 1);
      snapshots_checked.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        hist.Observe(static_cast<double>(round % 100));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_GT(snapshots_checked.load(), 0u);

  // Quiescent totals line up exactly once the races end.
  const obs::Histogram::Snapshot final_snap = hist.TakeSnapshot();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kWriters) * kRounds;
  EXPECT_EQ(final_snap.count, expected);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : final_snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, expected);
}

TEST(ObsRaceStressTest, DecisionLogRecordVsSnapshot) {
  DecisionLog& log = DecisionLog::Global();
  log.SetCapacity(256);  // small ring: force wrap-around under contention
  log.SetEnabled(true);
  const std::uint64_t base_total = log.TotalRecorded();

  constexpr int kWriters = 4;
  constexpr int kRounds = 500;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)log.Snapshot();
      (void)log.ToJson();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        DecisionRecord record;
        record.op_id = log.NextOpId();
        record.ti = w;
        record.tj = round;
        log.Record(record);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  log.SetEnabled(false);

  EXPECT_EQ(log.TotalRecorded() - base_total,
            static_cast<std::uint64_t>(kWriters) * kRounds);
  EXPECT_EQ(log.Snapshot().size(), 256u);  // ring stayed capped
  log.Clear();
}

}  // namespace
}  // namespace atmx
