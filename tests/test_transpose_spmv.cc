#include <gtest/gtest.h>

#include "ops/spmv.h"
#include "ops/transpose.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::RandomCoo;

TEST(TransposeTest, CsrTranspose) {
  CooMatrix coo = RandomCoo(23, 41, 200, 1);
  CsrMatrix a = CooToCsr(coo);
  CsrMatrix at = Transpose(a);
  EXPECT_EQ(at.rows(), 41);
  EXPECT_EQ(at.cols(), 23);
  EXPECT_EQ(at.nnz(), a.nnz());
  EXPECT_TRUE(at.CheckValid());
  for (index_t i = 0; i < a.rows(); ++i) {
    auto cols = a.RowCols(i);
    auto vals = a.RowValues(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      EXPECT_DOUBLE_EQ(at.At(cols[p], i), vals[p]);
    }
  }
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  CooMatrix coo = RandomCoo(31, 17, 150, 2);
  CsrMatrix a = CooToCsr(coo);
  CsrMatrix att = Transpose(Transpose(a));
  atmx::testing::ExpectDenseNear(CsrToDense(a), CsrToDense(att), 0.0);
}

TEST(TransposeTest, DenseTranspose) {
  DenseMatrix a(3, 2);
  a.At(0, 1) = 5.0;
  a.At(2, 0) = 7.0;
  DenseMatrix at = Transpose(a);
  EXPECT_EQ(at.rows(), 2);
  EXPECT_EQ(at.cols(), 3);
  EXPECT_DOUBLE_EQ(at.At(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(at.At(0, 2), 7.0);
}

TEST(TransposeTest, CooTranspose) {
  CooMatrix coo(4, 6);
  coo.Add(1, 5, 2.0);
  CooMatrix t = Transpose(coo);
  EXPECT_EQ(t.rows(), 6);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.entries()[0].row, 5);
  EXPECT_EQ(t.entries()[0].col, 1);
}

TEST(TransposeTest, ATMatrixTransposePreservesTopology) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  CooMatrix coo = RandomCoo(96, 64, 900, 20);
  ATMatrix atm = PartitionToAtm(coo, config);
  ATMatrix t = Transpose(atm, config.num_sockets);
  EXPECT_TRUE(t.CheckValid());
  EXPECT_EQ(t.rows(), 64);
  EXPECT_EQ(t.cols(), 96);
  EXPECT_EQ(t.nnz(), atm.nnz());
  EXPECT_EQ(t.num_tiles(), atm.num_tiles());
  EXPECT_EQ(t.NumDenseTiles(), atm.NumDenseTiles());
  // Content transposed.
  for (index_t i = 0; i < 96; ++i) {
    for (index_t j = 0; j < 64; ++j) {
      EXPECT_DOUBLE_EQ(t.At(j, i), atm.At(i, j));
    }
  }
  // Density map transposed.
  const DensityMap& src = atm.density_map();
  for (index_t bi = 0; bi < src.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < src.grid_cols(); ++bj) {
      EXPECT_DOUBLE_EQ(t.density_map().At(bj, bi), src.At(bi, bj));
    }
  }
}

TEST(TransposeTest, ATMatrixDoubleTransposeIsIdentity) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  CooMatrix coo = RandomCoo(48, 48, 400, 21);
  ATMatrix atm = PartitionToAtm(coo, config);
  ATMatrix tt = Transpose(Transpose(atm));
  atmx::testing::ExpectDenseNear(CsrToDense(atm.ToCsr()),
                                 CsrToDense(tt.ToCsr()), 0.0);
}

TEST(SpMVTest, CsrMatchesDenseComputation) {
  CooMatrix coo = RandomCoo(40, 25, 300, 3);
  CsrMatrix a = CooToCsr(coo);
  DenseMatrix dense = CooToDense(coo);
  Rng rng(4);
  std::vector<value_t> x(25);
  for (auto& v : x) v = rng.NextDouble();
  std::vector<value_t> y = SpMV(a, x);
  ASSERT_EQ(y.size(), 40u);
  for (index_t i = 0; i < 40; ++i) {
    value_t expected = 0.0;
    for (index_t j = 0; j < 25; ++j) expected += dense.At(i, j) * x[j];
    EXPECT_NEAR(y[i], expected, 1e-10);
  }
}

TEST(SpMVTest, AtMatrixMatchesCsr) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  CooMatrix coo = RandomCoo(100, 100, 2500, 5);
  CsrMatrix csr = CooToCsr(coo);
  ATMatrix atm = PartitionToAtm(coo, config);
  Rng rng(6);
  std::vector<value_t> x(100);
  for (auto& v : x) v = rng.NextDouble() - 0.5;
  std::vector<value_t> y_csr = SpMV(csr, x);
  std::vector<value_t> y_atm = SpMV(atm, x);
  ASSERT_EQ(y_csr.size(), y_atm.size());
  for (std::size_t i = 0; i < y_csr.size(); ++i) {
    EXPECT_NEAR(y_csr[i], y_atm[i], 1e-10);
  }
}

TEST(SpMVTest, ParallelMatchesSerial) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 18;
  config.num_sockets = 3;
  config.cores_per_socket = 2;
  // Heterogeneous structure with tall melted tiles spanning several bands.
  CooMatrix coo = RandomCoo(200, 200, 3000, 7);
  ATMatrix atm = PartitionToAtm(coo, config);
  Rng rng(8);
  std::vector<value_t> x(200);
  for (auto& v : x) v = rng.NextDouble() - 0.5;
  std::vector<value_t> serial = SpMV(atm, x);
  std::vector<value_t> parallel = SpMVParallel(atm, x, config);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i], parallel[i], 1e-10);
  }
}

TEST(SpMVTest, EmptyMatrixGivesZeroVector) {
  CsrMatrix a(5, 7);
  std::vector<value_t> x(7, 1.0);
  std::vector<value_t> y = SpMV(a, x);
  for (value_t v : y) EXPECT_EQ(v, 0.0);
}

// Regression tests for the x-size validation: a short vector must be
// rejected by the always-on check in every SpMV entry point, not read out
// of range. (These are death tests because size mismatches are programming
// errors, handled by ATMX_CHECK rather than Status.)
TEST(SpMVDeathTest, CsrRejectsMismatchedVectorLength) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  CooMatrix coo = RandomCoo(8, 8, 20, 11);
  CsrMatrix a = CooToCsr(coo);
  std::vector<value_t> short_x(7, 1.0);
  std::vector<value_t> long_x(9, 1.0);
  EXPECT_DEATH(SpMV(a, short_x), "x.size\\(\\)");
  EXPECT_DEATH(SpMV(a, long_x), "x.size\\(\\)");
}

TEST(SpMVDeathTest, AtMatrixAndParallelRejectMismatchedVectorLength) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  CooMatrix coo = RandomCoo(32, 32, 100, 13);
  ATMatrix atm = PartitionToAtm(coo, config);
  std::vector<value_t> short_x(31, 1.0);
  EXPECT_DEATH(SpMV(atm, short_x), "x.size\\(\\)");
  EXPECT_DEATH(SpMVParallel(atm, short_x, config), "x.size\\(\\)");
}

}  // namespace
}  // namespace atmx
