#include "viz/render.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gen/synthetic.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

AtmConfig VizConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  return config;
}

TEST(RenderTest, DensityMapAsciiShape) {
  CooMatrix coo = atmx::testing::RandomCoo(64, 64, 400, 1);
  DensityMap map = DensityMap::FromCoo(coo, 16);
  const std::string art = RenderDensityMapAscii(map, 16);
  // 4 grid rows => 4 lines.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(RenderTest, DenseBlockShowsDarkGlyph) {
  CooMatrix coo(32, 32);
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 16; ++j) coo.Add(i, j, 1.0);
  }
  DensityMap map = DensityMap::FromCoo(coo, 16);
  const std::string art = RenderDensityMapAscii(map, 4);
  EXPECT_EQ(art[0], '@');  // full block
  EXPECT_EQ(art[1], ' ');  // empty block
}

TEST(RenderTest, TileLayoutMentionsLegendAndDenseTiles) {
  CooMatrix coo = GenerateDiagonalDenseBlocks(128, 4, 24, 0.95, 200, 2);
  ATMatrix atm = PartitionToAtm(coo, VizConfig());
  const std::string art = RenderTileLayoutAscii(atm, 32);
  EXPECT_NE(art.find("legend"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);  // dense tiles present
}

TEST(RenderTest, PgmFilesAreWellFormed) {
  CooMatrix coo = GenerateDiagonalDenseBlocks(128, 4, 24, 0.95, 200, 3);
  ATMatrix atm = PartitionToAtm(coo, VizConfig());

  const std::string map_path = ::testing::TempDir() + "/map.pgm";
  ASSERT_TRUE(WriteDensityMapPgm(atm.density_map(), map_path).ok());
  const std::string layout_path = ::testing::TempDir() + "/layout.pgm";
  ASSERT_TRUE(WriteTileLayoutPgm(atm, layout_path).ok());

  for (const std::string& path : {map_path, layout_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string magic;
    index_t w, h, maxval;
    in >> magic >> w >> h >> maxval;
    EXPECT_EQ(magic, "P2");
    EXPECT_GT(w, 0);
    EXPECT_GT(h, 0);
    EXPECT_EQ(maxval, 255);
    index_t count = 0;
    int v;
    while (in >> v) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 255);
      ++count;
    }
    EXPECT_EQ(count, w * h);
  }
}

TEST(RenderTest, EmptyMapRendersPlaceholder) {
  DensityMap map;
  EXPECT_EQ(RenderDensityMapAscii(map), "(empty)\n");
}

}  // namespace
}  // namespace atmx
