#include "ops/optimizer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/convert.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

MultiplyShape Shape(index_t m, index_t k, index_t n, double ra, double rb,
                    double rc) {
  return {m, k, n, ra, rb, rc};
}

TEST(PairDecisionTest, KeepsRepresentationsWhenConversionDisallowed) {
  CostModel model;
  PairDecision d = DecidePairRepresentations(
      model, Shape(256, 256, 256, 0.9, 0.9, 0.9), /*a_is_dense=*/false,
      /*b_is_dense=*/false, false, false, /*c_dense=*/true,
      /*allow_conversion=*/false);
  EXPECT_FALSE(d.a_dense);
  EXPECT_FALSE(d.b_dense);
  EXPECT_FALSE(d.a_converted);
  EXPECT_FALSE(d.b_converted);
}

TEST(PairDecisionTest, ConvertsDenseishSparseTiles) {
  CostModel model;
  // Operands stored sparse but nearly full: dense kernel wins even after
  // paying the conversion.
  PairDecision d = DecidePairRepresentations(
      model, Shape(512, 512, 512, 0.9, 0.9, 0.9), false, false, false,
      false, true, true);
  EXPECT_TRUE(d.a_dense);
  EXPECT_TRUE(d.b_dense);
  EXPECT_TRUE(d.a_converted);
  EXPECT_TRUE(d.b_converted);
}

TEST(PairDecisionTest, KeepsHypersparseTilesSparse) {
  CostModel model;
  PairDecision d = DecidePairRepresentations(
      model, Shape(512, 512, 512, 0.001, 0.001, 0.001), false, false, false,
      false, false, true);
  EXPECT_FALSE(d.a_dense);
  EXPECT_FALSE(d.b_dense);
}

TEST(PairDecisionTest, CachedConversionTipsTheScale) {
  CostModel model;
  // Density near the turnaround: without a cached conversion the
  // conversion cost keeps the tile sparse; with the conversion already
  // cached the dense kernel is free to win.
  // n wide enough to stay out of the SpMM panel regime (its cheaper
  // sparse x dense rate moves the turnaround, tested separately below).
  const double rho = 0.26;
  const MultiplyShape shape = Shape(128, 128, 512, rho, 1.0, 0.9);
  PairDecision uncached = DecidePairRepresentations(
      model, shape, false, true, false, false, true, true);
  PairDecision cached = DecidePairRepresentations(model, shape, false, true,
                                                  true, false, true, true);
  EXPECT_LE(uncached.projected_cost + 1e-9, 1e18);
  EXPECT_TRUE(cached.a_dense);
  // The cached projected cost can never exceed the uncached one.
  EXPECT_LE(cached.projected_cost, uncached.projected_cost + 1e-9);
}

TEST(PairDecisionTest, PanelRateKeepsSparseAgainstSkinnyDense) {
  CostModel model;
  // Same densities as CachedConversionTipsTheScale, but a tall-skinny
  // dense B (n <= kSpmmMaxPanelCols): the register-strip SpMM panel rate
  // prices the sparse x dense kernel below the dense one up to
  // rho = c_ddd / c_sdd_panel, so A stays sparse even when its dense
  // conversion would be free.
  const MultiplyShape shape = Shape(128, 128, 128, 0.26, 1.0, 0.9);
  PairDecision cached = DecidePairRepresentations(model, shape, false, true,
                                                  true, false, true, true);
  EXPECT_FALSE(cached.a_dense);
  EXPECT_TRUE(cached.b_dense);
}

TEST(PairDecisionTest, DenseOperandCanConvertToSparse) {
  CostModel model;
  // A dense-stored but hypersparse tile against a hypersparse B: the
  // sparse kernel wins by orders of magnitude.
  PairDecision d = DecidePairRepresentations(
      model, Shape(512, 512, 512, 0.001, 0.001, 0.0001), true, false, false,
      false, false, true);
  EXPECT_FALSE(d.a_dense);
  EXPECT_TRUE(d.a_converted);
}

TEST(ConversionCacheTest, ConvertsOnceAndReuses) {
  CooMatrix coo = atmx::testing::RandomCoo(16, 16, 50, 1);
  Tile tile = Tile::MakeSparse(0, 0, CooToCsr(coo));
  ConversionCache cache;
  double seconds = 0.0;
  const DenseMatrix& first =
      cache.GetDense(ConversionCache::kLeft, 3, tile, &seconds);
  const DenseMatrix& second =
      cache.GetDense(ConversionCache::kLeft, 3, tile, &seconds);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(cache.sparse_to_dense_count(), 1);
  EXPECT_TRUE(cache.HasDense(ConversionCache::kLeft, 3));
  EXPECT_FALSE(cache.HasDense(ConversionCache::kRight, 3));
  EXPECT_FALSE(cache.HasDense(ConversionCache::kLeft, 4));
  // Converted payload preserves content.
  atmx::testing::ExpectDenseNear(CooToDense(coo), first);
}

TEST(ConversionCacheTest, DenseToSparseDirection) {
  DenseMatrix dense(8, 8);
  dense.At(3, 4) = 2.0;
  Tile tile = Tile::MakeDense(0, 0, std::move(dense));
  ConversionCache cache;
  double seconds = 0.0;
  const CsrMatrix& sparse =
      cache.GetSparse(ConversionCache::kRight, 0, tile, &seconds);
  EXPECT_EQ(sparse.nnz(), 1);
  EXPECT_DOUBLE_EQ(sparse.At(3, 4), 2.0);
  EXPECT_EQ(cache.dense_to_sparse_count(), 1);
  EXPECT_TRUE(cache.HasSparse(ConversionCache::kRight, 0));
}

TEST(ConversionCacheTest, SidesAndIndicesAreIndependentKeys) {
  CooMatrix coo = atmx::testing::RandomCoo(8, 8, 10, 2);
  Tile tile = Tile::MakeSparse(0, 0, CooToCsr(coo));
  ConversionCache cache;
  double seconds = 0.0;
  cache.GetDense(ConversionCache::kLeft, 1, tile, &seconds);
  cache.GetDense(ConversionCache::kRight, 1, tile, &seconds);
  cache.GetDense(ConversionCache::kLeft, 2, tile, &seconds);
  EXPECT_EQ(cache.sparse_to_dense_count(), 3);
}

TEST(ConversionCacheTest, ConversionCountersAreLockProtected) {
  // Regression for the unlocked counter accessors the thread-safety
  // migration surfaced: sparse_to_dense_count()/dense_to_sparse_count()
  // read mutex-guarded fields without taking the mutex, so a caller
  // polling mid-operation raced the converting workers. Under TSan this
  // test reproduces the old report; the totals double as a correctness
  // check either way.
  CooMatrix coo = atmx::testing::RandomCoo(16, 16, 60, 3);
  Tile sparse_tile = Tile::MakeSparse(0, 0, CooToCsr(coo));
  DenseMatrix dense(16, 16);
  dense.At(1, 2) = 1.0;
  Tile dense_tile = Tile::MakeDense(0, 0, std::move(dense));

  ConversionCache cache;
  constexpr int kThreads = 4;
  constexpr index_t kTilesPerThread = 64;
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    // Counters are monotone; a torn or stale read can only manifest as a
    // TSan report or a non-monotone observation.
    index_t last_s2d = 0;
    index_t last_d2s = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const index_t s2d = cache.sparse_to_dense_count();
      const index_t d2s = cache.dense_to_sparse_count();
      EXPECT_GE(s2d, last_s2d);
      EXPECT_GE(d2s, last_d2s);
      last_s2d = s2d;
      last_d2s = d2s;
    }
  });
  std::vector<std::thread> converters;
  for (int t = 0; t < kThreads; ++t) {
    converters.emplace_back([&, t] {
      double seconds = 0.0;
      for (index_t i = 0; i < kTilesPerThread; ++i) {
        const index_t idx = t * kTilesPerThread + i;
        cache.GetDense(ConversionCache::kLeft, idx, sparse_tile, &seconds);
        cache.GetSparse(ConversionCache::kRight, idx, dense_tile, &seconds);
      }
    });
  }
  for (auto& t : converters) t.join();
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_EQ(cache.sparse_to_dense_count(), kThreads * kTilesPerThread);
  EXPECT_EQ(cache.dense_to_sparse_count(), kThreads * kTilesPerThread);
}

}  // namespace
}  // namespace atmx
