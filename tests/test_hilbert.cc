#include "morton/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/rng.h"
#include "morton/morton.h"

namespace atmx {
namespace {

TEST(HilbertTest, EncodeDecodeRoundTrip) {
  Rng rng(1);
  for (int order : {1, 3, 8, 16}) {
    const index_t side = index_t{1} << order;
    for (int i = 0; i < 2000; ++i) {
      const index_t r = static_cast<index_t>(rng.NextBounded(side));
      const index_t c = static_cast<index_t>(rng.NextBounded(side));
      index_t r2, c2;
      HilbertDecode(HilbertEncode(r, c, order), order, &r2, &c2);
      EXPECT_EQ(r, r2);
      EXPECT_EQ(c, c2);
    }
  }
}

TEST(HilbertTest, IsABijectionOnSmallGrids) {
  for (int order : {1, 2, 3, 4}) {
    const index_t side = index_t{1} << order;
    std::set<std::uint64_t> seen;
    for (index_t r = 0; r < side; ++r) {
      for (index_t c = 0; c < side; ++c) {
        const std::uint64_t d = HilbertEncode(r, c, order);
        EXPECT_LT(d, static_cast<std::uint64_t>(side * side));
        EXPECT_TRUE(seen.insert(d).second) << "duplicate index " << d;
      }
    }
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreAdjacentCells) {
  // The defining Hilbert property (which the Z-curve lacks): cells with
  // consecutive curve indices are grid neighbours.
  const int order = 5;
  const index_t side = index_t{1} << order;
  index_t pr, pc;
  HilbertDecode(0, order, &pr, &pc);
  for (std::uint64_t d = 1; d < static_cast<std::uint64_t>(side * side);
       ++d) {
    index_t r, c;
    HilbertDecode(d, order, &r, &c);
    EXPECT_EQ(std::abs(r - pr) + std::abs(c - pc), 1) << "at d=" << d;
    pr = r;
    pc = c;
  }
}

TEST(HilbertTest, ZCurveLacksAdjacency) {
  // Sanity contrast: the Z-curve jumps at quadrant boundaries.
  index_t jumps = 0;
  index_t pr, pc;
  MortonDecode(0, &pr, &pc);
  for (std::uint64_t z = 1; z < 1024; ++z) {
    index_t r, c;
    MortonDecode(z, &r, &c);
    if (std::abs(r - pr) + std::abs(c - pc) > 1) ++jumps;
    pr = r;
    pc = c;
  }
  EXPECT_GT(jumps, 100);
}

TEST(HilbertTest, QuadrantsAreContiguousRanges) {
  // Like the Z-curve, Hilbert is a quadtree curve: every aligned quadrant
  // occupies one contiguous index range — the property the partitioner's
  // recursion relies on for any quadtree-order curve.
  const int order = 4;
  const index_t side = index_t{1} << order;
  for (index_t qr = 0; qr < 2; ++qr) {
    for (index_t qc = 0; qc < 2; ++qc) {
      std::uint64_t lo = UINT64_MAX, hi = 0;
      for (index_t r = 0; r < side / 2; ++r) {
        for (index_t c = 0; c < side / 2; ++c) {
          const std::uint64_t d =
              HilbertEncode(qr * side / 2 + r, qc * side / 2 + c, order);
          lo = std::min(lo, d);
          hi = std::max(hi, d);
        }
      }
      EXPECT_EQ(hi - lo + 1,
                static_cast<std::uint64_t>(side / 2) * (side / 2));
    }
  }
}

}  // namespace
}  // namespace atmx
