#include "common/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace atmx {
namespace {

void ExpectSortedPermutation(const std::vector<std::uint64_t>& keys) {
  std::vector<index_t> perm = SortedPermutation(keys);
  ASSERT_EQ(perm.size(), keys.size());
  // Permutation property: every index exactly once.
  std::vector<bool> seen(keys.size(), false);
  for (index_t p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, static_cast<index_t>(keys.size()));
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
  // Sortedness.
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
}

TEST(RadixSortTest, EmptyAndSingleton) {
  ExpectSortedPermutation({});
  ExpectSortedPermutation({42});
}

TEST(RadixSortTest, SmallInputsUseComparisonPath) {
  Rng rng(1);
  std::vector<std::uint64_t> keys(100);
  for (auto& k : keys) k = rng.Next();
  ExpectSortedPermutation(keys);
}

TEST(RadixSortTest, LargeRandomKeys) {
  Rng rng(2);
  std::vector<std::uint64_t> keys(100000);
  for (auto& k : keys) k = rng.Next();
  ExpectSortedPermutation(keys);
}

TEST(RadixSortTest, NarrowKeyRangeUsesFewPasses) {
  Rng rng(3);
  std::vector<std::uint64_t> keys(50000);
  for (auto& k : keys) k = rng.NextBounded(1000);  // 2-byte keys
  ExpectSortedPermutation(keys);
}

TEST(RadixSortTest, AllEqualKeysIsStableIdentity) {
  std::vector<std::uint64_t> keys(10000, 7);
  std::vector<index_t> perm = SortedPermutation(keys);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(perm[i], static_cast<index_t>(i));  // stability
  }
}

TEST(RadixSortTest, StabilityForDuplicateKeys) {
  Rng rng(4);
  std::vector<std::uint64_t> keys(20000);
  for (auto& k : keys) k = rng.NextBounded(50);  // heavy duplication
  std::vector<index_t> perm = SortedPermutation(keys);
  for (std::size_t i = 1; i < perm.size(); ++i) {
    if (keys[perm[i - 1]] == keys[perm[i]]) {
      EXPECT_LT(perm[i - 1], perm[i]);  // ties keep original order
    }
  }
}

TEST(RadixSortTest, MatchesStdSort) {
  Rng rng(5);
  std::vector<std::uint64_t> keys(30000);
  for (auto& k : keys) k = rng.Next() >> (rng.NextBounded(48));
  std::vector<index_t> expected(keys.size());
  std::iota(expected.begin(), expected.end(), index_t{0});
  std::stable_sort(expected.begin(), expected.end(),
                   [&](index_t a, index_t b) { return keys[a] < keys[b]; });
  EXPECT_EQ(SortedPermutation(keys), expected);
}

}  // namespace
}  // namespace atmx
