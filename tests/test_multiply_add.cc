// C' = C + A*B — the accumulating form of the ATMULT operator
// (section III: "three independent operand types ... C' = C + A*B").

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "ops/atmult.h"
#include "ops/reference_mult.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

AtmConfig TestConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;
  return config;
}

DenseMatrix ExpectedSum(const CooMatrix& c0, const CooMatrix& a,
                        const CooMatrix& b) {
  DenseMatrix expected = ReferenceMultiply(CooToDense(a), CooToDense(b));
  DenseMatrix init = CooToDense(c0);
  for (index_t i = 0; i < expected.rows(); ++i) {
    for (index_t j = 0; j < expected.cols(); ++j) {
      expected.At(i, j) += init.At(i, j);
    }
  }
  return expected;
}

void ExpectMultiplyAddMatches(const CooMatrix& c0_coo, const CooMatrix& a_coo,
                              const CooMatrix& b_coo,
                              const AtmConfig& config) {
  ATMatrix c0 = PartitionToAtm(c0_coo, config);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix b = PartitionToAtm(b_coo, config);
  AtMult op(config);
  ATMatrix result = op.MultiplyAdd(c0, a, b);
  EXPECT_TRUE(result.CheckValid());
  ExpectDenseNear(ExpectedSum(c0_coo, a_coo, b_coo),
                  CsrToDense(result.ToCsr()), 1e-9);
}

TEST(MultiplyAddTest, SparseAccumulator) {
  CooMatrix a = RandomCoo(60, 48, 400, 1);
  CooMatrix b = RandomCoo(48, 72, 500, 2);
  CooMatrix c0 = RandomCoo(60, 72, 300, 3);
  ExpectMultiplyAddMatches(c0, a, b, TestConfig());
}

TEST(MultiplyAddTest, DenseAccumulator) {
  CooMatrix a = GenerateDiagonalDenseBlocks(64, 2, 16, 0.9, 100, 4);
  CooMatrix b = RandomCoo(64, 64, 600, 5);
  CooMatrix c0 = DenseToCoo(GenerateFullDense(64, 64, 6));
  ExpectMultiplyAddMatches(c0, a, b, TestConfig());
}

TEST(MultiplyAddTest, EmptyAccumulatorEqualsMultiply) {
  AtmConfig config = TestConfig();
  CooMatrix a_coo = RandomCoo(50, 50, 400, 7);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix zero = PartitionToAtm(CooMatrix(50, 50), config);
  AtMult op(config);
  ATMatrix via_add = op.MultiplyAdd(zero, a, a);
  ATMatrix via_mult = op.Multiply(a, a);
  ExpectDenseNear(CsrToDense(via_mult.ToCsr()), CsrToDense(via_add.ToCsr()),
                  1e-12);
}

TEST(MultiplyAddTest, EmptyProductReturnsAccumulator) {
  AtmConfig config = TestConfig();
  CooMatrix c0_coo = RandomCoo(40, 40, 200, 8);
  ATMatrix c0 = PartitionToAtm(c0_coo, config);
  ATMatrix zero = PartitionToAtm(CooMatrix(40, 40), config);
  AtMult op(config);
  ATMatrix result = op.MultiplyAdd(c0, zero, zero);
  ExpectDenseNear(CooToDense(c0_coo), CsrToDense(result.ToCsr()), 0.0);
}

TEST(MultiplyAddTest, RepeatedAccumulationChain) {
  // C_{t+1} = C_t + A*A, three times => C = 3 * (A*A).
  AtmConfig config = TestConfig();
  CooMatrix a_coo = RandomCoo(48, 48, 350, 9);
  ATMatrix a = PartitionToAtm(a_coo, config);
  AtMult op(config);
  ATMatrix c = op.Multiply(a, a);
  c = op.MultiplyAdd(c, a, a);
  c = op.MultiplyAdd(c, a, a);
  DenseMatrix once = ReferenceMultiply(CooToDense(a_coo), CooToDense(a_coo));
  DenseMatrix three(48, 48);
  for (index_t i = 0; i < 48; ++i) {
    for (index_t j = 0; j < 48; ++j) three.At(i, j) = 3.0 * once.At(i, j);
  }
  ExpectDenseNear(three, CsrToDense(c.ToCsr()), 1e-9);
}

TEST(MultiplyAddTest, AccumulatorWithDifferentTiling) {
  // The accumulator's tiling (fixed grid) differs from the result's bands.
  AtmConfig config = TestConfig();
  AtmConfig fixed = config;
  fixed.tiling = TilingMode::kFixed;
  CooMatrix a_coo = RandomCoo(64, 64, 500, 10);
  CooMatrix c0_coo = RandomCoo(64, 64, 400, 11);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix c0 = PartitionToAtm(c0_coo, fixed);
  AtMult op(config);
  ATMatrix result = op.MultiplyAdd(c0, a, a);
  ExpectDenseNear(ExpectedSum(c0_coo, a_coo, a_coo),
                  CsrToDense(result.ToCsr()), 1e-9);
}

TEST(MultiplyAddTest, ParallelTeamsAgree) {
  AtmConfig config = TestConfig();
  config.num_worker_teams = 3;
  config.threads_per_team = 2;
  config.num_sockets = 3;
  CooMatrix a = GenerateDiagonalDenseBlocks(96, 3, 16, 0.8, 300, 12);
  CooMatrix c0 = RandomCoo(96, 96, 500, 13);
  ExpectMultiplyAddMatches(c0, a, a, config);
}

}  // namespace
}  // namespace atmx
