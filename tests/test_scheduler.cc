// Scheduling determinism and steal-protocol accounting (docs/SCHEDULER.md):
// ATMULT results must be bitwise identical no matter which team executes a
// task, every task must run exactly once under forced-steal stress, and the
// steal counters must reconcile with per-team execution counts.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/config.h"
#include "gen/rmat.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "storage/csr_matrix.h"
#include "tile/partitioner.h"
#include "topology/numa_sim.h"
#include "topology/thread_pool.h"

namespace atmx {
namespace {

// Exact (bitwise) equality of two CSR matrices: identical structure and
// identical value bits — not an epsilon comparison.
void ExpectBitwiseEqual(const CsrMatrix& x, const CsrMatrix& y) {
  ASSERT_EQ(x.rows(), y.rows());
  ASSERT_EQ(x.cols(), y.cols());
  ASSERT_EQ(x.nnz(), y.nnz());
  ASSERT_EQ(x.row_ptr(), y.row_ptr());
  ASSERT_EQ(x.col_idx(), y.col_idx());
  for (std::size_t i = 0; i < x.values().size(); ++i) {
    const auto bits = [](value_t v) {
      std::uint64_t b;
      static_assert(sizeof(v) == sizeof(b));
      std::memcpy(&b, &v, sizeof(b));
      return b;
    };
    ASSERT_EQ(bits(x.values()[i]), bits(y.values()[i])) << "value " << i;
  }
}

CooMatrix HubHeavyRmat(index_t dim, index_t nnz, std::uint64_t seed) {
  RmatParams params;
  params.rows = dim;
  params.cols = dim;
  params.nnz = nnz;
  // Graph500-style skew: non-zeros concentrate in the first tile-rows, so
  // a few hub tasks dominate while most queues hold near-empty tasks.
  params.a = 0.57;
  params.b = 0.19;
  params.c = 0.19;
  params.seed = seed;
  return GenerateRmat(params);
}

TEST(SchedulerDeterminismTest, BitwiseIdenticalAcrossStealingAndTeams) {
  const CooMatrix coo = HubHeavyRmat(512, 6000, /*seed=*/7);

  CsrMatrix reference(0, 0);
  bool have_reference = false;
  for (const int teams : {1, 2, 4}) {
    for (const bool stealing : {false, true}) {
      AtmConfig config;
      config.b_atomic = 64;
      config.llc_bytes = 1 << 18;
      config.num_sockets = teams;
      config.num_worker_teams = teams;
      config.threads_per_team = 2;
      config.work_stealing = stealing;
      ATMatrix atm = PartitionToAtm(coo, config);
      AtMult op(config);
      AtMultStats stats;
      CsrMatrix product = op.Multiply(atm, atm, &stats).ToCsr();
      if (!have_reference) {
        reference = std::move(product);
        have_reference = true;
        continue;
      }
      SCOPED_TRACE("teams=" + std::to_string(teams) +
                   " stealing=" + std::to_string(stealing));
      ExpectBitwiseEqual(reference, product);
    }
  }
}

TEST(SchedulerDeterminismTest, MultiplyAddBitwiseIdenticalWithStealing) {
  const CooMatrix coo = HubHeavyRmat(256, 3000, /*seed=*/11);
  CsrMatrix reference(0, 0);
  bool have_reference = false;
  for (const bool stealing : {false, true}) {
    AtmConfig config;
    config.b_atomic = 32;
    config.llc_bytes = 1 << 16;
    config.num_sockets = 4;
    config.work_stealing = stealing;
    ATMatrix atm = PartitionToAtm(coo, config);
    AtMult op(config);
    CsrMatrix product = op.MultiplyAdd(atm, atm, atm).ToCsr();
    if (!have_reference) {
      reference = std::move(product);
      have_reference = true;
      continue;
    }
    ExpectBitwiseEqual(reference, product);
  }
}

TEST(SchedulerStealTest, ForcedStealRunsEveryTaskOnceAndReconciles) {
  constexpr int kTeams = 4;
  constexpr index_t kTasks = 64;
  TeamScheduler scheduler(kTeams, 1);

  ScheduleOptions options;
  options.work_stealing = true;
  ScheduleStats stats;
  std::vector<std::atomic<int>> runs(kTasks);
  std::mutex mu;
  std::vector<int> executed_by(kTasks, -1);
  scheduler.RunTasks(
      kTasks, [](index_t) { return 0; },  // all tasks homed to team 0
      [&](WorkerTeam& team, index_t task) {
        runs[static_cast<std::size_t>(task)].fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(mu);
          executed_by[static_cast<std::size_t>(task)] = team.team_id();
        }
        // Enough work per task that the idle teams' drivers get scheduled
        // while team 0 is still draining its (artificially loaded) queue.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      options, &stats);

  index_t executed_total = 0;
  for (int t = 0; t < kTeams; ++t) {
    executed_total += stats.executed_per_team[t];
    // Per-team reconciliation: everything a non-home team executed was a
    // steal, and team 0 (the home of every task) never steals.
    if (t == 0) {
      EXPECT_EQ(stats.stolen_per_team[0], 0);
    } else {
      EXPECT_EQ(stats.stolen_per_team[t], stats.executed_per_team[t]);
    }
  }
  EXPECT_EQ(executed_total, kTasks);
  EXPECT_GT(stats.TotalSteals(), 0u);
  for (index_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(runs[static_cast<std::size_t>(t)].load(), 1) << "task " << t;
  }
  // Execution-team record agrees with the per-team counters.
  std::vector<index_t> counted(kTeams, 0);
  for (index_t t = 0; t < kTasks; ++t) {
    ASSERT_GE(executed_by[static_cast<std::size_t>(t)], 0);
    ++counted[static_cast<std::size_t>(
        executed_by[static_cast<std::size_t>(t)])];
  }
  for (int t = 0; t < kTeams; ++t) {
    EXPECT_EQ(counted[static_cast<std::size_t>(t)],
              stats.executed_per_team[t]);
  }
}

TEST(SchedulerStealTest, StealCountersMatchOffHomeExecution) {
  // Randomized homes: total steals must equal the number of tasks whose
  // executing team differs from their home team, per team and in total.
  constexpr int kTeams = 3;
  constexpr index_t kTasks = 120;
  TeamScheduler scheduler(kTeams, 1);
  ScheduleOptions options;
  options.work_stealing = true;
  ScheduleStats stats;
  std::mutex mu;
  std::vector<int> executed_by(kTasks, -1);
  auto home_of = [](index_t task) { return static_cast<int>(task % kTeams); };
  scheduler.RunTasks(
      kTasks, home_of,
      [&](WorkerTeam& team, index_t task) {
        std::lock_guard<std::mutex> lock(mu);
        executed_by[static_cast<std::size_t>(task)] = team.team_id();
      },
      options, &stats);
  std::vector<index_t> off_home(kTeams, 0);
  for (index_t t = 0; t < kTasks; ++t) {
    const int exec = executed_by[static_cast<std::size_t>(t)];
    ASSERT_GE(exec, 0);
    if (exec != home_of(t)) ++off_home[static_cast<std::size_t>(exec)];
  }
  for (int t = 0; t < kTeams; ++t) {
    EXPECT_EQ(off_home[static_cast<std::size_t>(t)],
              stats.stolen_per_team[t])
        << "team " << t;
  }
}

TEST(SchedulerLptTest, SingleTeamDrainsLongestProcessingTimeFirst) {
  // With one team nothing can be stolen, so the execution order is exactly
  // the LPT-sorted home queue: descending cost, ties in submission order.
  TeamScheduler scheduler(1, 1);
  ScheduleOptions options;
  options.work_stealing = true;
  options.cost_of = [](index_t task) {
    return static_cast<double>(task % 5);
  };
  std::vector<index_t> order;
  scheduler.RunTasks(
      10, [](index_t) { return 0; },
      [&](WorkerTeam&, index_t task) { order.push_back(task); },
      options, nullptr);
  const std::vector<index_t> expected = {4, 9, 3, 8, 2, 7, 1, 6, 0, 5};
  EXPECT_EQ(order, expected);
}

TEST(SchedulerLptTest, StaticModeIgnoresCostOrdering) {
  // Paper-faithful static scheduling keeps submission order even when a
  // cost function is supplied.
  TeamScheduler scheduler(1, 1);
  ScheduleOptions options;
  options.work_stealing = false;
  options.cost_of = [](index_t task) { return static_cast<double>(task); };
  std::vector<index_t> order;
  scheduler.RunTasks(
      6, [](index_t) { return 0; },
      [&](WorkerTeam&, index_t task) { order.push_back(task); },
      options, nullptr);
  const std::vector<index_t> expected = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(order, expected);
}

TEST(SchedulerVictimTest, NumaDistanceIsARing) {
  EXPECT_EQ(NumaDistance(0, 0, 4), 0);
  EXPECT_EQ(NumaDistance(0, 1, 4), 1);
  EXPECT_EQ(NumaDistance(0, 2, 4), 2);  // opposite corner: two hops
  EXPECT_EQ(NumaDistance(0, 3, 4), 1);  // ring wraps
  EXPECT_EQ(NumaDistance(1, 0, 2), 1);
  EXPECT_EQ(NumaDistance(5, 2, 8), 3);
}

TEST(SchedulerStatsTest, AtMultReportsStealsAndBusyTimes) {
  const CooMatrix coo = HubHeavyRmat(512, 6000, /*seed=*/21);
  AtmConfig config;
  config.b_atomic = 32;
  config.llc_bytes = 1 << 16;
  config.num_sockets = 4;
  config.work_stealing = true;
  ATMatrix atm = PartitionToAtm(coo, config);
  AtMult op(config);
  AtMultStats stats;
  op.Multiply(atm, atm, &stats);
  ASSERT_EQ(stats.team_busy_seconds.size(), 4u);
  EXPECT_GT(stats.MaxTeamBusySeconds(), 0.0);

  config.work_stealing = false;
  AtMult static_op(config);
  AtMultStats static_stats;
  static_op.Multiply(atm, atm, &static_stats);
  EXPECT_EQ(static_stats.tasks_stolen, 0);
}

}  // namespace
}  // namespace atmx
