// Prediction-vs-outcome audit ledger: symmetric-error edge cases (the
// all-dense exact-zero and hypersparse round-to-zero-nnz regimes), JSON
// round-trips, counterfactual regret when predictions are fed back as
// measurements, the calibration-drift gate, and the end-to-end path where
// a real ATMULT execution populates the global ledger and the
// estimator.err.* histograms.

#include "obs/audit_ledger.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gen/synthetic.h"
#include "kernels/kernel_common.h"
#include "kernels/sparse_accumulator.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "ops/atmult.h"
#include "ops/optimizer.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::RandomCoo;
using obs::AuditGateResult;
using obs::AuditLedger;
using obs::AuditLedgerDoc;
using obs::AuditReport;
using obs::BuildAuditReport;
using obs::ChainAuditRecord;
using obs::CostAuditRecord;
using obs::DensityAuditRecord;
using obs::EvaluateAuditGate;
using obs::InjectDensityMisestimate;
using obs::JsonValue;
using obs::JsonWellFormed;
using obs::LoadAuditLedger;
using obs::MetricsRegistry;
using obs::ParseAuditLedgerJson;
using obs::ParseJson;
using obs::Percentile;
using obs::RenderAuditEnvelopeJson;
using obs::RenderAuditLedgerJson;
using obs::RenderAuditReportText;
using obs::ReprAuditRecord;
using obs::SpaModeAuditRecord;
using obs::SymmetricRelError;
using obs::WaterLevelAuditRecord;

AtmConfig TestConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;
  return config;
}

JsonValue MustParse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return parsed.value();
}

// ---- SymmetricRelError / Percentile semantics ----

TEST(SymmetricRelError, ExactlyZeroWhenPredictionMatches) {
  // The all-dense matrix case: estimator says 1.0, measurement is 1.0 —
  // the error must be exactly 0.0, not an epsilon.
  EXPECT_EQ(0.0, SymmetricRelError(1.0, 1.0));
  EXPECT_EQ(0.0, SymmetricRelError(0.73, 0.73));
  EXPECT_EQ(0.0, SymmetricRelError(0.0, 0.0));
}

TEST(SymmetricRelError, HypersparseZeroEstimateSaturatesAtOne) {
  // A hypersparse tile whose nnz estimate rounds to zero predicts
  // density 0; any nonzero measurement is a total miss (err == 1), and
  // an actually-empty tile is a perfect prediction (err == 0).
  EXPECT_EQ(1.0, SymmetricRelError(0.0, 1e-9));
  EXPECT_EQ(1.0, SymmetricRelError(1e-9, 0.0));
  EXPECT_EQ(0.0, SymmetricRelError(0.0, 0.0));
  // Bounded and symmetric.
  EXPECT_DOUBLE_EQ(0.5, SymmetricRelError(0.5, 1.0));
  EXPECT_DOUBLE_EQ(0.5, SymmetricRelError(1.0, 0.5));
  EXPECT_LE(SymmetricRelError(0.001, 0.9), 1.0);
}

TEST(SymmetricRelError, NegativeDenominatorGuard) {
  // Non-positive denominators (shouldn't happen for densities, but the
  // guard exists) report 0 rather than a negative or infinite error.
  EXPECT_EQ(0.0, SymmetricRelError(-1.0, -2.0));
}

TEST(Percentile, NearestRank) {
  std::vector<double> v = {0.4, 0.1, 0.3, 0.2};
  EXPECT_DOUBLE_EQ(0.2, Percentile(v, 0.5));   // ceil(2) - 1 = idx 1
  EXPECT_DOUBLE_EQ(0.4, Percentile(v, 0.95));  // ceil(3.8) - 1 = idx 3
  EXPECT_DOUBLE_EQ(0.1, Percentile(v, 0.0));
  EXPECT_DOUBLE_EQ(0.4, Percentile(v, 1.0));
  EXPECT_EQ(0.0, Percentile({}, 0.5));
  EXPECT_DOUBLE_EQ(7.0, Percentile({7.0}, 0.5));
}

// ---- Report construction ----

TEST(AuditReport, EmptyLedgerProducesZeroCountsAndGateSkips) {
  const AuditLedgerDoc doc;  // empty density map, no records anywhere
  const AuditReport rep = BuildAuditReport(doc, 10);
  EXPECT_EQ(0u, rep.density.count);
  EXPECT_EQ(0u, rep.cost.count);
  EXPECT_EQ(0u, rep.waterlevel.count);
  EXPECT_EQ(0u, rep.spa_mode.count);
  EXPECT_EQ(0u, rep.repr.count);
  EXPECT_EQ(0u, rep.chain.count);
  EXPECT_EQ(0u, rep.repr_considered);
  EXPECT_EQ(0u, rep.spa_considered);
  EXPECT_TRUE(rep.worst.empty());
  EXPECT_EQ(0.0, rep.cost_scale);

  const JsonValue baseline = MustParse(
      "{\"schema_version\":1,\"kind\":\"atmx_audit_baseline\","
      "\"classes\":{\"density\":{\"p50\":0.1,\"p95\":0.2,\"max\":0.3}},"
      "\"max_repr_regret_fraction\":0.05,\"max_spa_regret_fraction\":0.05}");
  const AuditGateResult gate = EvaluateAuditGate(rep, baseline);
  EXPECT_TRUE(gate.ok);
  EXPECT_EQ(0, gate.regressions);
  EXPECT_NE(std::string::npos, gate.text.find("density SKIP (no records)"));
  EXPECT_NE(std::string::npos,
            gate.text.find("repr_regret_fraction SKIP (no decisions)"));
}

TEST(AuditReport, AllDenseMatrixReportsExactZeroError) {
  AuditLedgerDoc doc;
  for (int i = 0; i < 8; ++i) {
    DensityAuditRecord r;
    r.op = 1;
    r.bi = i;
    r.bj = i;
    r.predicted = 1.0;
    r.actual = 1.0;
    doc.density.push_back(r);
  }
  const AuditReport rep = BuildAuditReport(doc, 4);
  EXPECT_EQ(8u, rep.density.count);
  EXPECT_EQ(0.0, rep.density.p50);
  EXPECT_EQ(0.0, rep.density.p95);
  EXPECT_EQ(0.0, rep.density.max);
  EXPECT_EQ(0.0, rep.density.mean);
  ASSERT_EQ(4u, rep.worst.size());
  EXPECT_EQ(0.0, rep.worst[0].err);
}

TEST(AuditReport, HypersparseZeroEstimatesDominateWorstList) {
  AuditLedgerDoc doc;
  // Two perfect blocks and one hypersparse block whose estimate rounded
  // to zero nnz while the measurement found a stray element.
  DensityAuditRecord good;
  good.predicted = good.actual = 0.25;
  doc.density.push_back(good);
  doc.density.push_back(good);
  DensityAuditRecord miss;
  miss.op = 3;
  miss.bi = 5;
  miss.bj = 7;
  miss.predicted = 0.0;
  miss.actual = 1.0 / (1 << 20);
  doc.density.push_back(miss);
  const AuditReport rep = BuildAuditReport(doc, 2);
  EXPECT_EQ(3u, rep.density.count);
  EXPECT_EQ(1.0, rep.density.max);
  ASSERT_FALSE(rep.worst.empty());
  EXPECT_EQ("density", rep.worst[0].decision_class);
  EXPECT_EQ(1.0, rep.worst[0].err);
  EXPECT_EQ(5, rep.worst[0].ti);
  EXPECT_EQ(7, rep.worst[0].tj);
}

TEST(AuditReport, CostClassFitsScaleAcrossLedger) {
  AuditLedgerDoc doc;
  // Two tasks whose wall time is exactly 1e-9 s per cost unit: after the
  // global fit the scaled predictions match the measurements exactly.
  for (int i = 0; i < 2; ++i) {
    CostAuditRecord r;
    r.ti = i;
    r.predicted_cost = (i + 1) * 1000.0;
    r.measured_seconds = (i + 1) * 1000.0 * 1e-9;
    doc.cost.push_back(r);
  }
  const AuditReport rep = BuildAuditReport(doc, 0);
  EXPECT_EQ(2u, rep.cost.count);
  EXPECT_DOUBLE_EQ(1e-9, rep.cost_scale);
  EXPECT_NEAR(0.0, rep.cost.max, 1e-12);
  // Zero-duration records are excluded from the fit, not divided by.
  CostAuditRecord degenerate;
  doc.cost.push_back(degenerate);
  const AuditReport rep2 = BuildAuditReport(doc, 0);
  EXPECT_EQ(2u, rep2.cost.count);
}

// ---- Counterfactual regret ----

TEST(AuditReport, RegretIsZeroWhenPredictionsFedBackAsMeasurements) {
  // Build repr records straight from DecidePairRepresentations decisions
  // and then claim the measured density equalled the prediction: the
  // counterfactual replay must reproduce every logged choice, so regret
  // is identically zero.
  AuditLedgerDoc doc;
  doc.cost_params = CostParams{};
  doc.have_cost_params = true;
  const CostModel model(doc.cost_params);
  const double rho_w = 0.03;
  const double densities[] = {0.001, 0.01, 0.05, 0.3, 0.9};
  std::uint64_t op = 0;
  for (double rho_a : densities) {
    for (double rho_b : densities) {
      for (double rho_c : densities) {
        for (int stored = 0; stored < 4; ++stored) {
          MultiplyShape shape;
          shape.m = 64;
          shape.k = 48;
          shape.n = 64;
          shape.rho_a = rho_a;
          shape.rho_b = rho_b;
          shape.rho_c = rho_c;
          const bool a_dense = (stored & 1) != 0;
          const bool b_dense = (stored & 2) != 0;
          const bool c_dense = rho_c >= rho_w;
          const PairDecision d = DecidePairRepresentations(
              model, shape, a_dense, b_dense, /*a_cached=*/false,
              /*b_cached=*/false, c_dense, /*allow_conversion=*/true);
          ReprAuditRecord r;
          r.op = ++op;
          r.m = shape.m;
          r.k = shape.k;
          r.n = shape.n;
          r.rho_a = rho_a;
          r.rho_b = rho_b;
          r.rho_c_pred = rho_c;
          r.rho_c_actual = rho_c;  // prediction fed back as measurement
          r.rho_w = rho_w;
          r.a_stored_dense = a_dense;
          r.b_stored_dense = b_dense;
          r.allow_conversion = true;
          r.c_dense = c_dense;
          r.kernel =
              static_cast<int>(MakeKernelType(d.a_dense, d.b_dense, c_dense));
          r.stored_cost = d.stored_cost;
          r.chosen_cost = d.projected_cost;
          doc.repr.push_back(r);
        }
      }
    }
  }
  const AuditReport rep = BuildAuditReport(doc, 0);
  EXPECT_EQ(doc.repr.size(), rep.repr_considered);
  EXPECT_EQ(0u, rep.repr_regret);
  EXPECT_EQ(0.0, rep.repr_regret_cost);
  EXPECT_EQ(0.0, rep.repr.max);
}

TEST(AuditReport, SpaRegretZeroWhenRowNnzFedBack) {
  AuditLedgerDoc doc;
  const double row_nnz[] = {0.5, 3.0, 17.0, 200.0};
  const index_t widths[] = {64, 256, 4096};
  for (index_t width : widths) {
    for (double nnz : row_nnz) {
      SpaModeAuditRecord r;
      r.width = width;
      r.predicted_row_nnz = nnz;
      r.actual_row_nnz = nnz;
      r.chosen_mode =
          static_cast<int>(SparseAccumulator::ChooseMode(width, nnz));
      doc.spa_mode.push_back(r);
    }
  }
  const AuditReport rep = BuildAuditReport(doc, 0);
  EXPECT_EQ(doc.spa_mode.size(), rep.spa_considered);
  EXPECT_EQ(0u, rep.spa_regret);
  EXPECT_EQ(0.0, rep.spa_mode.max);
}

TEST(AuditReport, MeasuredDensityAcrossWaterLevelFlipsKernel) {
  // A prediction below the water level with a measurement above it must
  // flip the counterfactual C representation and register regret.
  AuditLedgerDoc doc;
  doc.cost_params = CostParams{};
  doc.have_cost_params = true;
  const CostModel model(doc.cost_params);
  MultiplyShape shape;
  shape.m = shape.k = shape.n = 64;
  shape.rho_a = 0.5;
  shape.rho_b = 0.5;
  shape.rho_c = 0.001;  // predicted: sparse C
  const PairDecision d = DecidePairRepresentations(
      model, shape, true, true, false, false, /*c_dense=*/false, true);
  ReprAuditRecord r;
  r.m = shape.m;
  r.k = shape.k;
  r.n = shape.n;
  r.rho_a = shape.rho_a;
  r.rho_b = shape.rho_b;
  r.rho_c_pred = shape.rho_c;
  r.rho_c_actual = 0.9;  // measured: far above rho_w
  r.rho_w = 0.03;
  r.a_stored_dense = true;
  r.b_stored_dense = true;
  r.allow_conversion = true;
  r.c_dense = false;
  r.kernel = static_cast<int>(MakeKernelType(d.a_dense, d.b_dense, false));
  doc.repr.push_back(r);
  const AuditReport rep = BuildAuditReport(doc, 0);
  EXPECT_EQ(1u, rep.repr_considered);
  EXPECT_EQ(1u, rep.repr_regret);
}

// ---- Serialization round-trips ----

AuditLedgerDoc OneOfEachDoc() {
  AuditLedgerDoc doc;
  doc.git_sha = "abc123";
  doc.dropped = 2;
  doc.cost_params = CostParams{};
  doc.cost_params.c_sdd = 5.125;  // exactly representable, survives %.17g
  doc.have_cost_params = true;
  DensityAuditRecord d;
  d.op = 7;
  d.bi = 1;
  d.bj = 2;
  d.predicted = 0.1 + 0.2;  // deliberately non-round double
  d.actual = 1.0 / 3.0;
  doc.density.push_back(d);
  CostAuditRecord c;
  c.op = 7;
  c.ti = 3;
  c.tj = 4;
  c.predicted_cost = 12345.678;
  c.measured_seconds = 1e-4;
  c.measured_cpu_ns = 99000.0;
  c.measured_cycles = 424242;
  c.kernel = static_cast<int>(KernelType::kSSD);
  doc.cost.push_back(c);
  WaterLevelAuditRecord w;
  w.op = 7;
  w.rho_w = 0.03;
  w.projected_bytes = 1 << 20;
  w.result_bytes = (1 << 20) + 17;
  w.high_water_bytes = 1 << 22;
  w.feasible = false;
  doc.waterlevel.push_back(w);
  SpaModeAuditRecord s;
  s.op = 7;
  s.ti = 5;
  s.tj = 6;
  s.width = 256;
  s.predicted_row_nnz = 3.5;
  s.actual_row_nnz = 4.25;
  s.chosen_mode = static_cast<int>(SparseAccumulator::Mode::kHash);
  doc.spa_mode.push_back(s);
  ReprAuditRecord r;
  r.op = 7;
  r.ti = 0;
  r.tj = 1;
  r.k0 = 2;
  r.k1 = 5;
  r.m = 64;
  r.k = 48;
  r.n = 32;
  r.rho_a = 0.7;
  r.rho_b = 0.01;
  r.rho_c_pred = 0.2;
  r.rho_c_actual = 0.25;
  r.rho_w = 0.03;
  r.a_stored_dense = true;
  r.b_cached = true;
  r.allow_conversion = true;
  r.c_dense = true;
  r.kernel = static_cast<int>(KernelType::kDSD);
  r.stored_cost = 100.5;
  r.chosen_cost = 88.25;
  doc.repr.push_back(r);
  ChainAuditRecord ch;
  ch.op = 8;
  ch.planned_cost = 500.0;
  ch.alternative_cost = 750.0;
  ch.fused = true;
  ch.measured_seconds = 0.0125;
  ch.budget_bytes = 1 << 21;
  ch.resident_peak_bytes = (1 << 21) - 4096;
  ch.rho_w = {0.03, 0.5, 1.0 / 3.0};
  doc.chain.push_back(ch);
  return doc;
}

TEST(AuditLedgerJson, RoundTripPreservesEveryField) {
  const AuditLedgerDoc doc = OneOfEachDoc();
  const std::string json = RenderAuditLedgerJson(doc);
  std::string error;
  EXPECT_TRUE(JsonWellFormed(json, &error)) << error;
  auto parsed = ParseAuditLedgerJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const AuditLedgerDoc& back = parsed.value();
  EXPECT_EQ(doc.git_sha, back.git_sha);
  EXPECT_EQ(doc.dropped, back.dropped);
  ASSERT_TRUE(back.have_cost_params);
  EXPECT_EQ(doc.cost_params.c_sdd, back.cost_params.c_sdd);
  ASSERT_EQ(1u, back.density.size());
  // %.17g serialization: doubles survive the trip bit-for-bit.
  EXPECT_EQ(doc.density[0].predicted, back.density[0].predicted);
  EXPECT_EQ(doc.density[0].actual, back.density[0].actual);
  EXPECT_EQ(doc.density[0].bi, back.density[0].bi);
  ASSERT_EQ(1u, back.cost.size());
  EXPECT_EQ(doc.cost[0].predicted_cost, back.cost[0].predicted_cost);
  EXPECT_EQ(doc.cost[0].measured_cycles, back.cost[0].measured_cycles);
  EXPECT_EQ(doc.cost[0].kernel, back.cost[0].kernel);
  ASSERT_EQ(1u, back.waterlevel.size());
  EXPECT_EQ(doc.waterlevel[0].projected_bytes,
            back.waterlevel[0].projected_bytes);
  EXPECT_EQ(doc.waterlevel[0].feasible, back.waterlevel[0].feasible);
  ASSERT_EQ(1u, back.spa_mode.size());
  EXPECT_EQ(doc.spa_mode[0].chosen_mode, back.spa_mode[0].chosen_mode);
  EXPECT_EQ(doc.spa_mode[0].predicted_row_nnz,
            back.spa_mode[0].predicted_row_nnz);
  ASSERT_EQ(1u, back.repr.size());
  EXPECT_EQ(doc.repr[0].kernel, back.repr[0].kernel);
  EXPECT_EQ(doc.repr[0].a_stored_dense, back.repr[0].a_stored_dense);
  EXPECT_EQ(doc.repr[0].b_cached, back.repr[0].b_cached);
  EXPECT_EQ(doc.repr[0].rho_c_actual, back.repr[0].rho_c_actual);
  ASSERT_EQ(1u, back.chain.size());
  EXPECT_EQ(doc.chain[0].fused, back.chain[0].fused);
  EXPECT_EQ(doc.chain[0].measured_seconds, back.chain[0].measured_seconds);
  EXPECT_EQ(doc.chain[0].budget_bytes, back.chain[0].budget_bytes);
  EXPECT_EQ(doc.chain[0].resident_peak_bytes,
            back.chain[0].resident_peak_bytes);
  EXPECT_EQ(doc.chain[0].rho_w, back.chain[0].rho_w);
}

TEST(AuditLedgerJson, ReplayIsDeterministic) {
  const AuditLedgerDoc doc = OneOfEachDoc();
  const std::string json = RenderAuditLedgerJson(doc);
  auto a = ParseAuditLedgerJson(json);
  ASSERT_TRUE(a.ok());
  const std::string text1 =
      RenderAuditReportText(BuildAuditReport(a.value(), 10));
  const std::string text2 =
      RenderAuditReportText(BuildAuditReport(a.value(), 10));
  EXPECT_EQ(text1, text2);
  // Render → parse → render is a fixed point.
  EXPECT_EQ(json, RenderAuditLedgerJson(a.value()));
}

TEST(AuditLedgerJson, ParseRejectsWrongKind) {
  EXPECT_FALSE(ParseAuditLedgerJson("{\"kind\":\"something_else\"}").ok());
  EXPECT_FALSE(ParseAuditLedgerJson("not json").ok());
}

TEST(AuditLedgerGlobal, WriteJsonAndLoadFromDisk) {
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Clear();
  ledger.SetEnabled(true);
  DensityAuditRecord d;
  d.predicted = 0.5;
  d.actual = 0.5;
  ledger.RecordDensity(d);
  WaterLevelAuditRecord w;
  w.projected_bytes = 100;
  w.result_bytes = 110;
  ledger.RecordWaterLevel(w);
  ledger.SetEnabled(false);

  const std::string path =
      ::testing::TempDir() + "/atmx_audit_ledger_test.json";
  const Status st = ledger.WriteJson(path);
  ASSERT_TRUE(st.ok()) << st.message();
  auto loaded = LoadAuditLedger(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(1u, loaded.value().density.size());
  EXPECT_EQ(1u, loaded.value().waterlevel.size());
  EXPECT_EQ(0.5, loaded.value().density[0].predicted);
  std::remove(path.c_str());
  ledger.Clear();
}

// ---- Gate + misestimate injection ----

TEST(AuditGate, EnvelopePassesThenFailsUnderInjectedMisestimate) {
  // An under-predicting estimator: pred = 0.8 * actual everywhere.
  AuditLedgerDoc doc;
  for (int i = 0; i < 16; ++i) {
    DensityAuditRecord r;
    r.bi = i;
    r.predicted = 0.4;
    r.actual = 0.5;
    doc.density.push_back(r);
  }
  const AuditReport rep = BuildAuditReport(doc, 0);
  EXPECT_NEAR(0.2, rep.density.p50, 1e-12);

  const std::string envelope_json = RenderAuditEnvelopeJson(rep, 1.5);
  std::string error;
  EXPECT_TRUE(JsonWellFormed(envelope_json, &error)) << error;
  const JsonValue envelope = MustParse(envelope_json);
  const AuditGateResult pass = EvaluateAuditGate(rep, envelope);
  EXPECT_TRUE(pass.ok) << pass.text;
  EXPECT_EQ(0, pass.regressions);
  EXPECT_NE(std::string::npos, pass.text.find("density p50 0.2000"));

  // Injection pushes predictions away from the measurements; the same
  // envelope must now fail (this estimator under-predicts, so a blind
  // multiply would have *helped* it — the push-away contract is what
  // makes the negative test meaningful).
  InjectDensityMisestimate(&doc, 2.0);
  EXPECT_DOUBLE_EQ(0.2, doc.density[0].predicted);  // 0.4 / 2
  const AuditReport worse = BuildAuditReport(doc, 0);
  EXPECT_GT(worse.density.p50, rep.density.p50);
  const AuditGateResult fail = EvaluateAuditGate(worse, envelope);
  EXPECT_FALSE(fail.ok);
  EXPECT_GE(fail.regressions, 1);
  EXPECT_NE(std::string::npos, fail.text.find("REGRESSION"));
}

TEST(AuditGate, InjectionWorsensOverPredictionsToo) {
  AuditLedgerDoc doc;
  DensityAuditRecord over;
  over.predicted = 0.5;
  over.actual = 0.25;
  doc.density.push_back(over);
  const double before =
      SymmetricRelError(over.predicted, over.actual);
  InjectDensityMisestimate(&doc, 2.0);
  EXPECT_DOUBLE_EQ(1.0, doc.density[0].predicted);  // 0.5 * 2, capped
  EXPECT_GT(SymmetricRelError(doc.density[0].predicted,
                              doc.density[0].actual),
            before);
}

TEST(AuditGate, RejectsInvalidBaselineDocument) {
  const AuditReport rep;
  const AuditGateResult gate =
      EvaluateAuditGate(rep, MustParse("{\"kind\":\"wrong\"}"));
  EXPECT_FALSE(gate.ok);
  EXPECT_EQ(1, gate.regressions);
}

// ---- End to end: a real multiplication populates the global ledger ----

TEST(AuditLedgerEndToEnd, MultiplyRecordsDecisionsAndHistograms) {
  AuditLedger& ledger = AuditLedger::Global();
  ledger.Clear();
  ledger.SetEnabled(true);
  // Registering via a record first pins the histogram before we read the
  // baseline count.
  DensityAuditRecord warm;
  ledger.RecordDensity(warm);
  ledger.Clear();
  obs::Histogram& density_hist =
      MetricsRegistry::Global().GetHistogram("estimator.err.density");
  const std::uint64_t hist_before = density_hist.TotalCount();

  const AtmConfig config = TestConfig();
  CooMatrix a_coo = GenerateDiagonalDenseBlocks(128, 4, 24, 0.9, 500, 21);
  CooMatrix b_coo = RandomCoo(128, 128, 1200, 22);
  ATMatrix a = PartitionToAtm(std::move(a_coo), config);
  ATMatrix b = PartitionToAtm(std::move(b_coo), config);
  AtMult op(config);
  AtMultStats stats;
  ATMatrix c = op.Multiply(a, b, &stats);
  ledger.SetEnabled(false);

  const AuditLedgerDoc doc = ledger.Snapshot();
  EXPECT_FALSE(doc.density.empty());
  EXPECT_FALSE(doc.cost.empty());
  EXPECT_TRUE(doc.have_cost_params);
  EXPECT_GE(density_hist.TotalCount(), hist_before + doc.density.size());

  // The ledger feeds the offline report end to end.
  const AuditReport rep = BuildAuditReport(doc, 5);
  EXPECT_EQ(doc.density.size(), rep.density.count);
  const std::string text = RenderAuditReportText(rep);
  EXPECT_NE(std::string::npos, text.find("prediction audit"));
  EXPECT_NE(std::string::npos, text.find("counterfactual"));
  ledger.Clear();
}

}  // namespace
}  // namespace atmx
