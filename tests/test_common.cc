#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace atmx {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kIoError, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(MathUtilTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(5), 8);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024);
  EXPECT_EQ(PrevPowerOfTwo(1023), 512);
  EXPECT_EQ(PrevPowerOfTwo(1024), 1024);
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(ConfigTest, PaperDefaultsDeriveAtomicBlock) {
  AtmConfig config;
  config.llc_bytes = 24LL * 1024 * 1024;  // paper's machine
  config.alpha = 3;
  // sqrt(24 MB / 24 B) = 1024 exactly — the paper's b_atomic (k = 10).
  EXPECT_EQ(config.MaxDenseTileSize(), 1024);
  EXPECT_EQ(config.AtomicBlockSize(), 1024);
}

TEST(ConfigTest, ExplicitAtomicBlockWins) {
  AtmConfig config;
  config.b_atomic = 64;
  EXPECT_EQ(config.AtomicBlockSize(), 64);
}

TEST(ConfigTest, EffectiveParallelismDefaults) {
  AtmConfig config;
  config.num_sockets = 4;
  config.cores_per_socket = 10;
  EXPECT_EQ(config.EffectiveTeams(), 4);
  EXPECT_EQ(config.EffectiveThreadsPerTeam(), 10);
  config.num_worker_teams = 2;
  config.threads_per_team = 3;
  EXPECT_EQ(config.EffectiveTeams(), 2);
  EXPECT_EQ(config.EffectiveThreadsPerTeam(), 3);
}

TEST(ConfigTest, ToStringMentionsKeyFields) {
  AtmConfig config;
  const std::string s = config.ToString();
  EXPECT_NE(s.find("rho_read"), std::string::npos);
  EXPECT_NE(s.find("adaptive"), std::string::npos);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"id", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "2.5"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("id"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header and separator and two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FmtBytes(2048), "2.00 KB");
  EXPECT_EQ(TablePrinter::FmtBytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(TimerTest, AccumulatesIntervals) {
  AccumulatingTimer timer;
  timer.Add(0.5);
  timer.Add(0.25);
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.75);
  timer.Reset();
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace atmx
