#include "tile/tile.h"

#include <gtest/gtest.h>

#include "storage/convert.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

TEST(TileTest, SparseTileBasics) {
  CooMatrix coo(4, 4);
  coo.Add(1, 2, 3.0);
  coo.Add(3, 0, -1.0);
  Tile tile = Tile::MakeSparse(8, 16, CooToCsr(coo));
  EXPECT_EQ(tile.kind(), TileKind::kSparse);
  EXPECT_FALSE(tile.is_dense());
  EXPECT_EQ(tile.row0(), 8);
  EXPECT_EQ(tile.col0(), 16);
  EXPECT_EQ(tile.rows(), 4);
  EXPECT_EQ(tile.cols(), 4);
  EXPECT_EQ(tile.row_end(), 12);
  EXPECT_EQ(tile.col_end(), 20);
  EXPECT_EQ(tile.nnz(), 2);
  EXPECT_DOUBLE_EQ(tile.Density(), 2.0 / 16.0);
  // Matrix-coordinate lookup.
  EXPECT_DOUBLE_EQ(tile.At(9, 18), 3.0);
  EXPECT_DOUBLE_EQ(tile.At(11, 16), -1.0);
  EXPECT_DOUBLE_EQ(tile.At(8, 16), 0.0);
}

TEST(TileTest, DenseTileBasics) {
  DenseMatrix payload(3, 5);
  payload.At(2, 4) = 7.0;
  Tile tile = Tile::MakeDense(10, 20, std::move(payload));
  EXPECT_TRUE(tile.is_dense());
  EXPECT_EQ(tile.nnz(), 1);
  EXPECT_DOUBLE_EQ(tile.At(12, 24), 7.0);
  EXPECT_EQ(tile.MemoryBytes(), 15 * sizeof(value_t));
}

TEST(TileTest, MemoryBytesReflectRepresentation) {
  CooMatrix coo(16, 16);
  for (index_t i = 0; i < 16; ++i) coo.Add(i, i, 1.0);
  Tile sparse = Tile::MakeSparse(0, 0, CooToCsr(coo));
  Tile dense = Tile::MakeDense(0, 0, CooToDense(coo));
  // 16 diagonal elements: sparse = 16*16 + 17*8 bytes, dense = 256*8.
  EXPECT_EQ(sparse.MemoryBytes(), 16u * 16 + 17 * 8);
  EXPECT_EQ(dense.MemoryBytes(), 256u * 8);
  EXPECT_LT(sparse.MemoryBytes(), dense.MemoryBytes());
}

TEST(TileTest, HomeNodeAssignment) {
  Tile tile = Tile::MakeSparse(0, 0, CsrMatrix(2, 2));
  EXPECT_EQ(tile.home_node(), 0);
  tile.set_home_node(3);
  EXPECT_EQ(tile.home_node(), 3);
}

TEST(TileKindTest, Names) {
  EXPECT_STREQ(TileKindName(TileKind::kDense), "dense");
  EXPECT_STREQ(TileKindName(TileKind::kSparse), "sparse");
}

}  // namespace
}  // namespace atmx
