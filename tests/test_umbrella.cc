// Compile-and-link check of the umbrella header: every public API symbol
// must be reachable through a single include.

#include "atmx.h"

#include <gtest/gtest.h>

namespace atmx {
namespace {

TEST(UmbrellaTest, EndToEndThroughSingleInclude) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  CooMatrix coo = GenerateUniform(64, 64, 400, 1);
  ATMatrix atm = PartitionToAtm(coo, config);
  AtMult op(config);
  ATMatrix c = op.Multiply(atm, atm);
  EXPECT_TRUE(c.CheckValid());
  EXPECT_GT(FrobeniusNorm(c), 0.0);
  MultiplyPlan plan = ExplainMultiply(atm, atm, config);
  EXPECT_FALSE(plan.ToString().empty());
}

}  // namespace
}  // namespace atmx
