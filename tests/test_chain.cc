#include "ops/chain.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <optional>
#include <string>

#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "obs/obs.h"
#include "ops/chain_exec.h"
#include "ops/reference_mult.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

#ifdef ATMX_OBS_ENABLED
#include "obs/mem_tracker.h"
#endif

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

AtmConfig ChainConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  return config;
}

TEST(ChainCostTest, ScalesWithExpectedIntermediates) {
  // Denser operands must be predicted costlier.
  CooMatrix thin = RandomCoo(64, 64, 200, 1);
  CooMatrix thick = RandomCoo(64, 64, 2000, 2);
  DensityMap thin_map = DensityMap::FromCoo(thin, 16);
  DensityMap thick_map = DensityMap::FromCoo(thick, 16);
  CostModel model;
  const double cheap = EstimateMultiplyCost(thin_map, thin_map, model, 0.03);
  const double pricey =
      EstimateMultiplyCost(thick_map, thick_map, model, 0.03);
  EXPECT_GT(pricey, cheap * 10);
}

TEST(ChainCostTest, IntermediateCountMatchesAnalyticUniform) {
  // Uniform rho: expected products = nnz_x * nnz_y / k.
  CooMatrix x = RandomCoo(128, 128, 1500, 3);
  DensityMap map = DensityMap::FromCoo(x, 32);
  CostModel model;
  const double cost = EstimateMultiplyCost(map, map, model, 1.1);
  // With rho_write > 1 the write side is all-sparse: cost =
  // c_ssd * products + sparse_write * E[stored]; products dominates and
  // must be within ~30% of nnz^2 / n for a uniform matrix.
  const double products = 1500.0 * 1500.0 / 128.0;
  EXPECT_GT(cost, model.params().c_ssd * products * 0.7);
  EXPECT_LT(cost, model.params().c_ssd * products * 2.5);
}

TEST(ChainPlanTest, SingleMatrixPlan) {
  CooMatrix a = RandomCoo(32, 32, 100, 4);
  DensityMap map = DensityMap::FromCoo(a, 16);
  ChainPlan plan = PlanChain({&map}, CostModel(), 0.03);
  EXPECT_EQ(plan.estimated_cost, 0.0);
  EXPECT_EQ(plan.ToString(), "A0");
}

TEST(ChainPlanTest, PrefersCheapSideFirst) {
  // A (dense-ish n x n) * B (dense-ish n x n) * v (n x 1 thin): the
  // classic case — evaluating B*v first (right-to-left) avoids the huge
  // A*B intermediate.
  const index_t n = 128;
  CooMatrix a_coo = RandomCoo(n, n, 4000, 5);
  CooMatrix b_coo = RandomCoo(n, n, 4000, 6);
  CooMatrix v_coo = RandomCoo(n, 2, 2 * n / 4, 7);
  DensityMap a = DensityMap::FromCoo(a_coo, 16);
  DensityMap b = DensityMap::FromCoo(b_coo, 16);
  DensityMap v = DensityMap::FromCoo(v_coo, 16);

  ChainPlan plan = PlanChain({&a, &b, &v}, CostModel(), 0.03);
  EXPECT_EQ(plan.ToString(), "(A0*(A1*A2))");
  const double naive =
      EstimateLeftToRightCost({&a, &b, &v}, CostModel(), 0.03);
  EXPECT_LT(plan.estimated_cost, naive);
}

TEST(ChainPlanTest, TwoMatrixPlan) {
  CooMatrix a = RandomCoo(32, 48, 150, 20);
  CooMatrix b = RandomCoo(48, 32, 150, 21);
  DensityMap a_map = DensityMap::FromCoo(a, 16);
  DensityMap b_map = DensityMap::FromCoo(b, 16);
  ChainPlan plan = PlanChain({&a_map, &b_map}, CostModel(), 0.03);
  EXPECT_EQ(plan.ToString(), "(A0*A1)");
  EXPECT_EQ(plan.split[0][1], 0);
  EXPECT_GT(plan.estimated_cost, 0.0);
}

TEST(ChainPlanDeathTest, MismatchedBlocksDie) {
  CooMatrix a = RandomCoo(32, 32, 100, 22);
  DensityMap block16 = DensityMap::FromCoo(a, 16);
  DensityMap block8 = DensityMap::FromCoo(a, 8);
  EXPECT_DEATH(PlanChain({&block16, &block8}, CostModel(), 0.03), "block");
}

TEST(ChainPlanDeathTest, IncompatibleShapesDie) {
  CooMatrix a = RandomCoo(32, 48, 100, 23);
  CooMatrix b = RandomCoo(32, 32, 100, 24);  // 48 != 32
  DensityMap a_map = DensityMap::FromCoo(a, 16);
  DensityMap b_map = DensityMap::FromCoo(b, 16);
  EXPECT_DEATH(PlanChain({&a_map, &b_map}, CostModel(), 0.03),
               "cols");
}

TEST(ChainExecuteTest, AllEmptyChainProducesEmptyResult) {
  // Structurally empty operands: the planner and both executors must
  // survive zero-density maps and produce an all-zero result.
  const AtmConfig config = ChainConfig();
  CooMatrix empty(48, 48);
  ATMatrix a = PartitionToAtm(empty, config);
  ATMatrix b = PartitionToAtm(empty, config);
  ATMatrix c = PartitionToAtm(empty, config);
  ChainPlan plan = PlanChain(
      {&a.density_map(), &b.density_map(), &c.density_map()}, CostModel(),
      config.rho_write);
  AtMult op(config);
  ChainExecStats stats;
  ATMatrix result = ExecuteChain({&a, &b, &c}, plan, op, &stats);
  EXPECT_EQ(result.rows(), 48);
  EXPECT_EQ(result.cols(), 48);
  EXPECT_EQ(result.ToCsr().nnz(), 0);
}

TEST(ChainExecuteTest, MatchesReferenceForAnyPlan) {
  const AtmConfig config = ChainConfig();
  CooMatrix a_coo = RandomCoo(40, 56, 350, 8);
  CooMatrix b_coo = RandomCoo(56, 32, 300, 9);
  CooMatrix c_coo = RandomCoo(32, 48, 250, 10);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix b = PartitionToAtm(b_coo, config);
  ATMatrix c = PartitionToAtm(c_coo, config);

  ChainPlan plan = PlanChain(
      {&a.density_map(), &b.density_map(), &c.density_map()}, CostModel(),
      config.rho_write);
  AtMult op(config);
  AtMultStats stats;
  ATMatrix result = ExecuteChain({&a, &b, &c}, plan, op, &stats);
  EXPECT_EQ(result.rows(), 40);
  EXPECT_EQ(result.cols(), 48);
  EXPECT_GT(stats.pair_multiplications, 0);

  DenseMatrix expected = ReferenceMultiply(
      ReferenceMultiply(CooToDense(a_coo), CooToDense(b_coo)),
      CooToDense(c_coo));
  ExpectDenseNear(expected, CsrToDense(result.ToCsr()), 1e-9);
}

TEST(ChainExecuteTest, FourMatrixChain) {
  const AtmConfig config = ChainConfig();
  std::vector<CooMatrix> coos;
  coos.push_back(RandomCoo(24, 48, 200, 11));
  coos.push_back(RandomCoo(48, 48, 600, 12));
  coos.push_back(RandomCoo(48, 48, 600, 13));
  coos.push_back(RandomCoo(48, 16, 120, 14));
  std::vector<ATMatrix> atms;
  std::vector<const ATMatrix*> chain;
  std::vector<const DensityMap*> maps;
  for (const CooMatrix& coo : coos) {
    atms.push_back(PartitionToAtm(coo, config));
  }
  for (const ATMatrix& atm : atms) {
    chain.push_back(&atm);
    maps.push_back(&atm.density_map());
  }
  ChainPlan plan = PlanChain(maps, CostModel(), config.rho_write);
  AtMult op(config);
  ATMatrix result = ExecuteChain(chain, plan, op);

  DenseMatrix expected = CooToDense(coos[0]);
  for (std::size_t i = 1; i < coos.size(); ++i) {
    expected = ReferenceMultiply(expected, CooToDense(coos[i]));
  }
  ExpectDenseNear(expected, CsrToDense(result.ToCsr()), 1e-8);
}

// Fused execution must be indistinguishable from product-at-a-time: the
// same per-tile pipeline runs on the same inputs in both modes, so the
// result must match bitwise — structure AND values — for any team count.
TEST(ChainExecuteTest, FusedMatchesUnfusedBitwiseAcrossTeams) {
  std::vector<CooMatrix> coos;
  coos.push_back(RandomCoo(64, 48, 700, 30));
  coos.push_back(RandomCoo(48, 64, 800, 31));
  coos.push_back(RandomCoo(64, 40, 600, 32));
  coos.push_back(RandomCoo(40, 56, 500, 33));

  for (int teams : {1, 2, 4}) {
    AtmConfig config = ChainConfig();
    config.num_sockets = teams;
    config.cores_per_socket = 2;

    std::vector<ATMatrix> atms;
    for (const CooMatrix& coo : coos) {
      atms.push_back(PartitionToAtm(coo, config));
    }
    std::vector<const ATMatrix*> chain;
    std::vector<const DensityMap*> maps;
    for (const ATMatrix& atm : atms) {
      chain.push_back(&atm);
      maps.push_back(&atm.density_map());
    }
    ChainPlan plan = PlanChain(maps, CostModel(), config.rho_write);

    AtmConfig fused_config = config;
    fused_config.fused_chains = true;
    AtmConfig unfused_config = config;
    unfused_config.fused_chains = false;

    ChainExecStats fused_stats;
    ChainExecStats unfused_stats;
    CsrMatrix fused = ExecuteChain(chain, plan, AtMult(fused_config),
                                   &fused_stats)
                          .ToCsr();
    CsrMatrix unfused = ExecuteChain(chain, plan, AtMult(unfused_config),
                                     &unfused_stats)
                            .ToCsr();
    EXPECT_TRUE(fused_stats.fused) << "teams=" << teams;
    EXPECT_GT(fused_stats.fused_tasks, 0) << "teams=" << teams;
    EXPECT_FALSE(unfused_stats.fused) << "teams=" << teams;
    EXPECT_EQ(fused_stats.per_product.size(), unfused_stats.per_product.size())
        << "teams=" << teams;

    ASSERT_EQ(fused.rows(), unfused.rows()) << "teams=" << teams;
    ASSERT_EQ(fused.cols(), unfused.cols()) << "teams=" << teams;
    ASSERT_EQ(fused.nnz(), unfused.nnz()) << "teams=" << teams;
    EXPECT_EQ(fused.row_ptr(), unfused.row_ptr()) << "teams=" << teams;
    EXPECT_EQ(fused.col_idx(), unfused.col_idx()) << "teams=" << teams;
    // Element-wise exact equality (operator== on the vectors would hide
    // which element diverged).
    for (std::size_t i = 0; i < fused.values().size(); ++i) {
      ASSERT_EQ(fused.values()[i], unfused.values()[i])
          << "teams=" << teams << " value index " << i;
    }
  }
}

// Team count must not change fused results either (band-ordered task
// execution is commutative over the deterministic per-tile pipeline).
TEST(ChainExecuteTest, FusedResultIdenticalAcrossTeamCounts) {
  std::vector<CooMatrix> coos;
  coos.push_back(RandomCoo(56, 56, 900, 40));
  coos.push_back(RandomCoo(56, 56, 900, 41));
  coos.push_back(RandomCoo(56, 56, 900, 42));

  std::optional<CsrMatrix> reference;
  for (int teams : {1, 2, 4}) {
    AtmConfig config = ChainConfig();
    config.num_sockets = teams;
    config.fused_chains = true;

    std::vector<ATMatrix> atms;
    for (const CooMatrix& coo : coos) {
      atms.push_back(PartitionToAtm(coo, config));
    }
    std::vector<const ATMatrix*> chain;
    std::vector<const DensityMap*> maps;
    for (const ATMatrix& atm : atms) {
      chain.push_back(&atm);
      maps.push_back(&atm.density_map());
    }
    ChainPlan plan = PlanChain(maps, CostModel(), config.rho_write);
    ChainExecStats stats;
    CsrMatrix result =
        ExecuteChain(chain, plan, AtMult(config), &stats).ToCsr();
    EXPECT_TRUE(stats.fused) << "teams=" << teams;
    if (!reference.has_value()) {
      reference = std::move(result);
      continue;
    }
    EXPECT_EQ(result.row_ptr(), reference->row_ptr()) << "teams=" << teams;
    EXPECT_EQ(result.col_idx(), reference->col_idx()) << "teams=" << teams;
    EXPECT_EQ(result.values(), reference->values()) << "teams=" << teams;
  }
}

// Helper for the budget tests: a 4-matrix chain whose intermediates have
// mixed-density blocks, so the chain-scope water level has real choices.
std::vector<CooMatrix> BudgetChainCoos() {
  // Sparse enough (~5% fill) that intermediate blocks land well below
  // rho 0.5: dense is the performance-optimal representation at rho_write
  // but NOT the memory-minimal one, so a budget genuinely moves the
  // water level instead of clamping at an all-dense floor.
  std::vector<CooMatrix> coos;
  coos.push_back(RandomCoo(96, 64, 350, 50));
  coos.push_back(RandomCoo(64, 96, 350, 51));
  coos.push_back(RandomCoo(96, 48, 260, 52));
  coos.push_back(RandomCoo(48, 80, 220, 53));
  return coos;
}

// A finite memory SLA must no longer silently disable fusion: the
// chain-scope water level plans per-product write thresholds against the
// shared budget, BOTH executors run at those thresholds, and results stay
// bitwise identical at every budget. A budget below the minimum
// achievable footprint downgrades to product-at-a-time with reason
// "budget_infeasible" — and stays bitwise identical even then.
TEST(ChainExecuteTest, FiniteBudgetFusedMatchesUnfusedBitwise) {
  const std::vector<CooMatrix> coos = BudgetChainCoos();

  // Probe the memory-minimal floor: a 1-byte budget is unachievable, and
  // the plan reports the peak of the clamped floor assignment.
  std::size_t floor_bytes = 0;
  {
    AtmConfig probe_config = ChainConfig();
    probe_config.result_mem_limit_bytes = 1;
    std::vector<ATMatrix> atms;
    for (const CooMatrix& coo : coos) {
      atms.push_back(PartitionToAtm(coo, probe_config));
    }
    std::vector<const ATMatrix*> chain;
    std::vector<const DensityMap*> maps;
    for (const ATMatrix& atm : atms) {
      chain.push_back(&atm);
      maps.push_back(&atm.density_map());
    }
    ChainPlan plan =
        PlanChain(maps, CostModel(), probe_config.rho_write);
    AtMult probe_op(probe_config);
    internal::ChainBudgetPlan probe =
        internal::PlanChainBudget(chain, plan, probe_op);
    ASSERT_TRUE(probe.active);
    ASSERT_FALSE(probe.feasible);
    floor_bytes = probe.projected_peak_bytes;
    ASSERT_GT(floor_bytes, 0u);
  }

  struct BudgetCase {
    const char* name;
    std::size_t budget;
    bool expect_fused;
  };
  const BudgetCase cases[] = {
      // Loose: thresholds stay at (or near) the performance optimum.
      {"loose", floor_bytes * 8, true},
      // Tight: barely achievable — thresholds forced to the memory-min
      // levels (+2 absorbs the solver's double->size_t truncation).
      {"tight", floor_bytes + 2, true},
      // Below the floor: no assignment fits; downgrade, don't crash.
      {"infeasible", floor_bytes / 2, false},
  };

  for (int teams : {1, 2, 4}) {
    for (const BudgetCase& bc : cases) {
      AtmConfig config = ChainConfig();
      config.num_sockets = teams;
      config.cores_per_socket = 2;
      config.result_mem_limit_bytes = bc.budget;

      std::vector<ATMatrix> atms;
      for (const CooMatrix& coo : coos) {
        atms.push_back(PartitionToAtm(coo, config));
      }
      std::vector<const ATMatrix*> chain;
      std::vector<const DensityMap*> maps;
      for (const ATMatrix& atm : atms) {
        chain.push_back(&atm);
        maps.push_back(&atm.density_map());
      }
      ChainPlan plan = PlanChain(maps, CostModel(), config.rho_write);

      AtmConfig fused_config = config;
      fused_config.fused_chains = true;
      AtmConfig unfused_config = config;
      unfused_config.fused_chains = false;

      ChainExecStats fused_stats;
      ChainExecStats unfused_stats;
      CsrMatrix fused =
          ExecuteChain(chain, plan, AtMult(fused_config), &fused_stats)
              .ToCsr();
      CsrMatrix unfused =
          ExecuteChain(chain, plan, AtMult(unfused_config), &unfused_stats)
              .ToCsr();
      const std::string tag =
          std::string(bc.name) + " teams=" + std::to_string(teams);

      EXPECT_EQ(fused_stats.fused, bc.expect_fused) << tag;
      EXPECT_EQ(fused_stats.budget_bytes, bc.budget) << tag;
      if (bc.expect_fused) {
        EXPECT_TRUE(fused_stats.budget_feasible) << tag;
        EXPECT_GT(fused_stats.fused_tasks, 0) << tag;
        EXPECT_TRUE(fused_stats.fallback_reason.empty()) << tag;
      } else {
        EXPECT_FALSE(fused_stats.budget_feasible) << tag;
        EXPECT_EQ(fused_stats.fallback_reason, "budget_infeasible") << tag;
      }

      // Both executors committed the same chain-planned thresholds.
      ASSERT_EQ(fused_stats.per_product.size(),
                unfused_stats.per_product.size())
          << tag;
      for (std::size_t p = 0; p < fused_stats.per_product.size(); ++p) {
        EXPECT_EQ(fused_stats.per_product[p].effective_write_threshold,
                  unfused_stats.per_product[p].effective_write_threshold)
            << tag << " product " << p;
      }

      ASSERT_EQ(fused.rows(), unfused.rows()) << tag;
      ASSERT_EQ(fused.cols(), unfused.cols()) << tag;
      ASSERT_EQ(fused.nnz(), unfused.nnz()) << tag;
      EXPECT_EQ(fused.row_ptr(), unfused.row_ptr()) << tag;
      EXPECT_EQ(fused.col_idx(), unfused.col_idx()) << tag;
      for (std::size_t i = 0; i < fused.values().size(); ++i) {
        ASSERT_EQ(fused.values()[i], unfused.values()[i])
            << tag << " value index " << i;
      }
    }
  }
}

// Left-to-right parenthesization (((A0*A1)*A2)*A3): keeps the sparse,
// water-level-movable first intermediate on the peak step, so a budget
// bracketed between the floor and the unconstrained projection genuinely
// binds (the DP-optimal plan can park the movable product off-peak).
ChainPlan LeftToRightPlan(int n) {
  ChainPlan plan;
  plan.split.assign(n, std::vector<int>(n, 0));
  for (int j = 1; j < n; ++j) {
    for (int i = 0; i < j; ++i) plan.split[i][j] = j - 1;
  }
  return plan;
}

// The fused executor's measured resident peak must respect an achievable
// budget up to the estimator's slack: admission control reserves each
// task's projected output before launch, so the realized peak can only
// exceed the budget by what the density estimate under-predicted.
TEST(ChainExecuteTest, FusedBudgetBoundsResidentPeak) {
  const std::vector<CooMatrix> coos = BudgetChainCoos();
  AtmConfig config = ChainConfig();
  config.fused_chains = true;

  std::vector<ATMatrix> atms;
  for (const CooMatrix& coo : coos) {
    atms.push_back(PartitionToAtm(coo, config));
  }
  std::vector<const ATMatrix*> chain;
  std::vector<const DensityMap*> maps;
  for (const ATMatrix& atm : atms) {
    chain.push_back(&atm);
    maps.push_back(&atm.density_map());
  }
  ChainPlan plan = LeftToRightPlan(static_cast<int>(chain.size()));

  // Bracket the budget between the memory-minimal floor (probe with an
  // unachievable 1-byte budget) and the unconstrained projection (probe
  // with a huge one), then aim for the middle: feasible by construction,
  // but binding — the thresholds must actually move.
  AtmConfig floor_config = config;
  floor_config.result_mem_limit_bytes = 1;
  const internal::ChainBudgetPlan floor_plan =
      internal::PlanChainBudget(chain, plan, AtMult(floor_config));
  ASSERT_FALSE(floor_plan.feasible);
  AtmConfig wide_config = config;
  wide_config.result_mem_limit_bytes =
      std::numeric_limits<std::size_t>::max() / 2;
  const internal::ChainBudgetPlan wide_plan =
      internal::PlanChainBudget(chain, plan, AtMult(wide_config));
  ASSERT_TRUE(wide_plan.feasible);
  ASSERT_LT(floor_plan.projected_peak_bytes, wide_plan.projected_peak_bytes)
      << "workload leaves the water level no room to move";

  const std::size_t budget = floor_plan.projected_peak_bytes +
                             (wide_plan.projected_peak_bytes -
                              floor_plan.projected_peak_bytes) /
                                 2;
  config.result_mem_limit_bytes = budget;
  ChainExecStats stats;
  ExecuteChain(chain, plan, AtMult(config), &stats);
  ASSERT_TRUE(stats.budget_feasible);
  ASSERT_TRUE(stats.fused);
  EXPECT_LE(stats.projected_peak_bytes, budget);
  // 25% slack for sparse blocks whose realized nnz exceeds the estimate.
  EXPECT_LE(stats.resident_peak_bytes, budget + budget / 4);
}

TEST(ChainExecuteTest, FallbackReasonsAreRecorded) {
  const AtmConfig base = ChainConfig();
  CooMatrix a_coo = RandomCoo(48, 48, 400, 60);
  CooMatrix b_coo = RandomCoo(48, 48, 400, 61);
  CooMatrix c_coo = RandomCoo(48, 48, 400, 62);

  // Two matrices: one product — nothing to fuse.
  {
    ATMatrix a = PartitionToAtm(a_coo, base);
    ATMatrix b = PartitionToAtm(b_coo, base);
    ChainPlan plan = PlanChain({&a.density_map(), &b.density_map()},
                               CostModel(), base.rho_write);
    ChainExecStats stats;
    ExecuteChain({&a, &b}, plan, AtMult(base), &stats);
    EXPECT_FALSE(stats.fused);
    EXPECT_EQ(stats.fallback_reason, "short_chain");
  }

  // Finite budget without density estimation: the chain-scope water
  // level has no maps to plan from.
  {
    AtmConfig config = base;
    config.density_estimation = false;
    config.result_mem_limit_bytes = 1 << 20;
    ATMatrix a = PartitionToAtm(a_coo, config);
    ATMatrix b = PartitionToAtm(b_coo, config);
    ATMatrix c = PartitionToAtm(c_coo, config);
    ChainPlan plan = PlanChain(
        {&a.density_map(), &b.density_map(), &c.density_map()}, CostModel(),
        config.rho_write);
    ChainExecStats stats;
    ExecuteChain({&a, &b, &c}, plan, AtMult(config), &stats);
    EXPECT_FALSE(stats.fused);
    EXPECT_EQ(stats.fallback_reason, "no_estimation");
  }

  // Fusion switched off entirely.
  {
    AtmConfig config = base;
    config.fused_chains = false;
    ATMatrix a = PartitionToAtm(a_coo, config);
    ATMatrix b = PartitionToAtm(b_coo, config);
    ATMatrix c = PartitionToAtm(c_coo, config);
    ChainPlan plan = PlanChain(
        {&a.density_map(), &b.density_map(), &c.density_map()}, CostModel(),
        config.rho_write);
    ChainExecStats stats;
    ExecuteChain({&a, &b, &c}, plan, AtMult(config), &stats);
    EXPECT_FALSE(stats.fused);
    EXPECT_EQ(stats.fallback_reason, "disabled");
  }
}

TEST(ChainExecStatsTest, AccumulateReportsMinimumWriteThreshold) {
  AtMultStats total;
  AtMultStats first;
  first.effective_write_threshold = 0.4;
  AtMultStats second;
  second.effective_write_threshold = 0.1;
  AtMultStats third;
  third.effective_write_threshold = 0.7;
  internal::AccumulateProductStats(first, &total);
  EXPECT_DOUBLE_EQ(total.effective_write_threshold, 0.4);
  internal::AccumulateProductStats(second, &total);
  EXPECT_DOUBLE_EQ(total.effective_write_threshold, 0.1);
  // Later, higher thresholds must not overwrite the binding minimum
  // (the old behavior was last-write-wins).
  internal::AccumulateProductStats(third, &total);
  EXPECT_DOUBLE_EQ(total.effective_write_threshold, 0.1);
}

#ifdef ATMX_OBS_ENABLED
// End-to-end memory SLA check: the process-wide logical high water of a
// budgeted fused chain stays within budget + operand overhead. The
// MemTracker also counts JIT-converted operand copies (outside the
// result budget's scope), so the bound allows for the operands once.
TEST(ChainExecuteTest, FusedBudgetBoundsTrackedHighWater) {
  const std::vector<CooMatrix> coos = BudgetChainCoos();
  AtmConfig config = ChainConfig();
  config.fused_chains = true;

  std::vector<ATMatrix> atms;
  std::size_t operand_bytes = 0;
  for (const CooMatrix& coo : coos) {
    atms.push_back(PartitionToAtm(coo, config));
    operand_bytes += atms.back().MemoryBytes();
  }
  std::vector<const ATMatrix*> chain;
  std::vector<const DensityMap*> maps;
  for (const ATMatrix& atm : atms) {
    chain.push_back(&atm);
    maps.push_back(&atm.density_map());
  }
  ChainPlan plan = LeftToRightPlan(static_cast<int>(chain.size()));

  // Same bracket as FusedBudgetBoundsResidentPeak: midway between the
  // memory-minimal floor and the unconstrained projection.
  AtmConfig floor_config = config;
  floor_config.result_mem_limit_bytes = 1;
  const internal::ChainBudgetPlan floor_plan =
      internal::PlanChainBudget(chain, plan, AtMult(floor_config));
  AtmConfig wide_config = config;
  wide_config.result_mem_limit_bytes =
      std::numeric_limits<std::size_t>::max() / 2;
  const internal::ChainBudgetPlan wide_plan =
      internal::PlanChainBudget(chain, plan, AtMult(wide_config));
  ASSERT_LT(floor_plan.projected_peak_bytes, wide_plan.projected_peak_bytes);
  const std::size_t budget = floor_plan.projected_peak_bytes +
                             (wide_plan.projected_peak_bytes -
                              floor_plan.projected_peak_bytes) /
                                 2;

  config.result_mem_limit_bytes = budget;
  obs::MemTracker::Global().ResetForTesting();
  ChainExecStats stats;
  ExecuteChain(chain, plan, AtMult(config), &stats);
  ASSERT_TRUE(stats.budget_feasible);
  ASSERT_TRUE(stats.fused);
  const std::uint64_t high_water =
      obs::MemTracker::Global().high_water_bytes();
  // Budget governs result tiles; operands may be JIT-converted once, and
  // sparse estimates carry ~25% slack.
  EXPECT_LE(high_water, budget + budget / 4 + operand_bytes);
  EXPECT_GT(high_water, 0u);
}
#endif  // ATMX_OBS_ENABLED

}  // namespace
}  // namespace atmx
