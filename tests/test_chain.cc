#include "ops/chain.h"

#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "ops/reference_mult.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

AtmConfig ChainConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  return config;
}

TEST(ChainCostTest, ScalesWithExpectedIntermediates) {
  // Denser operands must be predicted costlier.
  CooMatrix thin = RandomCoo(64, 64, 200, 1);
  CooMatrix thick = RandomCoo(64, 64, 2000, 2);
  DensityMap thin_map = DensityMap::FromCoo(thin, 16);
  DensityMap thick_map = DensityMap::FromCoo(thick, 16);
  CostModel model;
  const double cheap = EstimateMultiplyCost(thin_map, thin_map, model, 0.03);
  const double pricey =
      EstimateMultiplyCost(thick_map, thick_map, model, 0.03);
  EXPECT_GT(pricey, cheap * 10);
}

TEST(ChainCostTest, IntermediateCountMatchesAnalyticUniform) {
  // Uniform rho: expected products = nnz_x * nnz_y / k.
  CooMatrix x = RandomCoo(128, 128, 1500, 3);
  DensityMap map = DensityMap::FromCoo(x, 32);
  CostModel model;
  const double cost = EstimateMultiplyCost(map, map, model, 1.1);
  // With rho_write > 1 the write side is all-sparse: cost =
  // c_ssd * products + sparse_write * E[stored]; products dominates and
  // must be within ~30% of nnz^2 / n for a uniform matrix.
  const double products = 1500.0 * 1500.0 / 128.0;
  EXPECT_GT(cost, model.params().c_ssd * products * 0.7);
  EXPECT_LT(cost, model.params().c_ssd * products * 2.5);
}

TEST(ChainPlanTest, SingleMatrixPlan) {
  CooMatrix a = RandomCoo(32, 32, 100, 4);
  DensityMap map = DensityMap::FromCoo(a, 16);
  ChainPlan plan = PlanChain({&map}, CostModel(), 0.03);
  EXPECT_EQ(plan.estimated_cost, 0.0);
  EXPECT_EQ(plan.ToString(), "A0");
}

TEST(ChainPlanTest, PrefersCheapSideFirst) {
  // A (dense-ish n x n) * B (dense-ish n x n) * v (n x 1 thin): the
  // classic case — evaluating B*v first (right-to-left) avoids the huge
  // A*B intermediate.
  const index_t n = 128;
  CooMatrix a_coo = RandomCoo(n, n, 4000, 5);
  CooMatrix b_coo = RandomCoo(n, n, 4000, 6);
  CooMatrix v_coo = RandomCoo(n, 2, 2 * n / 4, 7);
  DensityMap a = DensityMap::FromCoo(a_coo, 16);
  DensityMap b = DensityMap::FromCoo(b_coo, 16);
  DensityMap v = DensityMap::FromCoo(v_coo, 16);

  ChainPlan plan = PlanChain({&a, &b, &v}, CostModel(), 0.03);
  EXPECT_EQ(plan.ToString(), "(A0*(A1*A2))");
  const double naive =
      EstimateLeftToRightCost({&a, &b, &v}, CostModel(), 0.03);
  EXPECT_LT(plan.estimated_cost, naive);
}

TEST(ChainExecuteTest, MatchesReferenceForAnyPlan) {
  const AtmConfig config = ChainConfig();
  CooMatrix a_coo = RandomCoo(40, 56, 350, 8);
  CooMatrix b_coo = RandomCoo(56, 32, 300, 9);
  CooMatrix c_coo = RandomCoo(32, 48, 250, 10);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix b = PartitionToAtm(b_coo, config);
  ATMatrix c = PartitionToAtm(c_coo, config);

  ChainPlan plan = PlanChain(
      {&a.density_map(), &b.density_map(), &c.density_map()}, CostModel(),
      config.rho_write);
  AtMult op(config);
  AtMultStats stats;
  ATMatrix result = ExecuteChain({&a, &b, &c}, plan, op, &stats);
  EXPECT_EQ(result.rows(), 40);
  EXPECT_EQ(result.cols(), 48);
  EXPECT_GT(stats.pair_multiplications, 0);

  DenseMatrix expected = ReferenceMultiply(
      ReferenceMultiply(CooToDense(a_coo), CooToDense(b_coo)),
      CooToDense(c_coo));
  ExpectDenseNear(expected, CsrToDense(result.ToCsr()), 1e-9);
}

TEST(ChainExecuteTest, FourMatrixChain) {
  const AtmConfig config = ChainConfig();
  std::vector<CooMatrix> coos;
  coos.push_back(RandomCoo(24, 48, 200, 11));
  coos.push_back(RandomCoo(48, 48, 600, 12));
  coos.push_back(RandomCoo(48, 48, 600, 13));
  coos.push_back(RandomCoo(48, 16, 120, 14));
  std::vector<ATMatrix> atms;
  std::vector<const ATMatrix*> chain;
  std::vector<const DensityMap*> maps;
  for (const CooMatrix& coo : coos) {
    atms.push_back(PartitionToAtm(coo, config));
  }
  for (const ATMatrix& atm : atms) {
    chain.push_back(&atm);
    maps.push_back(&atm.density_map());
  }
  ChainPlan plan = PlanChain(maps, CostModel(), config.rho_write);
  AtMult op(config);
  ATMatrix result = ExecuteChain(chain, plan, op);

  DenseMatrix expected = CooToDense(coos[0]);
  for (std::size_t i = 1; i < coos.size(); ++i) {
    expected = ReferenceMultiply(expected, CooToDense(coos[i]));
  }
  ExpectDenseNear(expected, CsrToDense(result.ToCsr()), 1e-8);
}

}  // namespace
}  // namespace atmx
