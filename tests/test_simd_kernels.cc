// Scalar-vs-SIMD contract tests for the level-dispatched micro-kernels:
//  - DddGemmLevel / AxpyLevel must be bitwise identical across every
//    runnable level (same per-element ascending-k order, separately
//    rounded mul and add);
//  - CsrRowDotLevel / DotLevel may reassociate into lane-partial sums on
//    kAvx2 and are validated against the scalar reference within a small
//    ULP bound;
//  - SparseAccumulator::AddScaledDenseRow must match the per-element Add
//    path bitwise in both accumulator modes;
//  - ResolveLevel env/CPU parsing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/simd/simd_kernels.h"
#include "kernels/sparse_accumulator.h"
#include "storage/dense_matrix.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

using simd::Level;

std::vector<Level> RunnableLevels() {
  std::vector<Level> levels = {Level::kScalar, Level::kGeneric};
  if (simd::Avx2Compiled() && simd::CpuSupportsAvx2()) {
    levels.push_back(Level::kAvx2);
  }
  return levels;
}

// Distance in representable doubles (0 = bitwise identical). Requires
// finite inputs of matching sign or values straddling zero by < 2^63 ulps.
std::int64_t UlpDistance(double a, double b) {
  std::int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  return ia >= ib ? ia - ib : ib - ia;
}

DenseMatrix RandomDense(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      m.At(i, j) = rng.NextDouble() * 2.0 - 1.0;
    }
  }
  return m;
}

std::vector<value_t> RandomVector(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<value_t> v(n);
  for (auto& x : v) x = rng.NextDouble() * 2.0 - 1.0;
  return v;
}

// ---------------------------------------------------------------------------
// DddGemmLevel: bitwise identity across levels.

struct GemmShape {
  index_t m, k, n;
};

// Shapes chosen to cover every tile-edge case of the 4x8 register blocking:
// exact multiples, row tails (m % 4), column tails (n % 8), single
// rows/columns, k = 0 and empty outputs.
const GemmShape kGemmShapes[] = {
    {4, 4, 8},    // exactly one register tile
    {8, 16, 16},  // multiple full tiles
    {7, 13, 21},  // row tail 3, column tail 5
    {33, 1, 33},  // k=1, row tail 1, column tail 1
    {1, 64, 1},   // single row, single column (pure tail)
    {5, 9, 9},    // row tail 1, column tail 1
    {4, 8, 7},    // narrower than one vector pair
    {3, 5, 4},    // no full 4-row strip at all
    {6, 0, 10},   // k = 0: C must be left untouched
    {0, 5, 8},    // empty row range
    {4, 5, 0},    // empty column range
};

TEST(SimdDddGemm, BitwiseIdenticalAcrossLevels) {
  for (const GemmShape& s : kGemmShapes) {
    DenseMatrix a = RandomDense(s.m, s.k, 1000 + s.m);
    DenseMatrix b = RandomDense(s.k, s.n, 2000 + s.n);
    // Nonzero initial C so accumulation (not overwrite) is covered.
    DenseMatrix c_ref = RandomDense(s.m, s.n, 3000 + s.k);
    simd::DddGemmLevel(Level::kScalar, a.View(), b.View(), c_ref.MutView(), 0,
                       s.m);
    for (Level level : RunnableLevels()) {
      if (level == Level::kScalar) continue;
      DenseMatrix c = RandomDense(s.m, s.n, 3000 + s.k);  // same seed: same C0
      simd::DddGemmLevel(level, a.View(), b.View(), c.MutView(), 0, s.m);
      for (index_t i = 0; i < s.m; ++i) {
        for (index_t j = 0; j < s.n; ++j) {
          ASSERT_EQ(c_ref.At(i, j), c.At(i, j))
              << "level=" << simd::LevelName(level) << " shape=" << s.m << "x"
              << s.k << "x" << s.n << " at (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(SimdDddGemm, PartialRowRangeMatchesScalar) {
  const index_t m = 13, k = 11, n = 19;
  DenseMatrix a = RandomDense(m, k, 7);
  DenseMatrix b = RandomDense(k, n, 8);
  for (Level level : RunnableLevels()) {
    DenseMatrix c_ref(m, n);
    DenseMatrix c(m, n);
    simd::DddGemmLevel(Level::kScalar, a.View(), b.View(), c_ref.MutView(), 3,
                       10);
    simd::DddGemmLevel(level, a.View(), b.View(), c.MutView(), 3, 10);
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) {
        ASSERT_EQ(c_ref.At(i, j), c.At(i, j));
      }
    }
    // Rows outside [3, 10) stay zero.
    for (index_t j = 0; j < n; ++j) {
      ASSERT_EQ(0.0, c.At(0, j));
      ASSERT_EQ(0.0, c.At(12, j));
    }
  }
}

// ---------------------------------------------------------------------------
// AxpyLevel: bitwise identity across levels, including vector tails.

TEST(SimdAxpy, BitwiseIdenticalAcrossLevels) {
  for (index_t n : {0, 1, 3, 4, 5, 7, 8, 9, 31, 100}) {
    std::vector<value_t> row = RandomVector(n, 42 + n);
    std::vector<value_t> base = RandomVector(n, 142 + n);
    const value_t scale = -0.37;
    std::vector<value_t> ref = base;
    simd::AxpyLevel(Level::kScalar, ref.data(), row.data(), scale, n);
    for (Level level : RunnableLevels()) {
      std::vector<value_t> values = base;
      simd::AxpyLevel(level, values.data(), row.data(), scale, n);
      for (index_t j = 0; j < n; ++j) {
        ASSERT_EQ(ref[j], values[j])
            << "level=" << simd::LevelName(level) << " n=" << n << " j=" << j;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SpmmRowPanelLevel: bitwise identity across levels, including every strip
// tail (16/8/4/scalar) and a non-zero column offset.

TEST(SimdSpmmRowPanel, BitwiseIdenticalAcrossLevels) {
  const index_t k = 20;  // B rows
  for (index_t n : {1, 3, 4, 7, 8, 15, 16, 17, 33, 64, 100, 256}) {
    DenseMatrix b = RandomDense(k, n, 5000 + n);
    // A sparse row touching a mix of B rows, some repeated-adjacent-free,
    // ascending as CSR guarantees.
    std::vector<index_t> cols = {0, 1, 3, 7, 8, 12, 19};
    std::vector<value_t> vals = RandomVector(static_cast<index_t>(cols.size()),
                                             6000 + n);
    std::vector<value_t> c_ref = RandomVector(n, 7000 + n);
    simd::SpmmRowPanelLevel(Level::kScalar, vals.data(), cols.data(), 0,
                            static_cast<index_t>(cols.size()), 0, b.View(),
                            c_ref.data());
    for (Level level : RunnableLevels()) {
      if (level == Level::kScalar) continue;
      std::vector<value_t> c = RandomVector(n, 7000 + n);  // same seed: same C0
      simd::SpmmRowPanelLevel(level, vals.data(), cols.data(), 0,
                              static_cast<index_t>(cols.size()), 0, b.View(),
                              c.data());
      for (index_t j = 0; j < n; ++j) {
        ASSERT_EQ(c_ref[j], c[j]) << "level=" << simd::LevelName(level)
                                  << " n=" << n << " j=" << j;
      }
    }
  }
}

TEST(SimdSpmmRowPanel, HonorsRangeAndColumnOffset) {
  const index_t k = 8, n = 21;
  DenseMatrix b = RandomDense(k, n, 11);
  // Global CSR arrays where only positions [2, 5) belong to this window;
  // window columns start at 100, so B row = col - 100.
  std::vector<index_t> cols = {90, 95, 100, 103, 107, 120};
  std::vector<value_t> vals = RandomVector(6, 12);
  for (Level level : RunnableLevels()) {
    std::vector<value_t> c(n, 0.25);
    simd::SpmmRowPanelLevel(level, vals.data(), cols.data(), 2, 5, 100,
                            b.View(), c.data());
    for (index_t j = 0; j < n; ++j) {
      value_t want = 0.25;
      for (index_t p = 2; p < 5; ++p) want += vals[p] * b.At(cols[p] - 100, j);
      ASSERT_EQ(want, c[j]) << "level=" << simd::LevelName(level)
                            << " j=" << j;
    }
  }
}

TEST(SimdSpmmRowPanel, EmptyRowLeavesCUntouched) {
  const index_t n = 16;
  DenseMatrix b = RandomDense(4, n, 13);
  std::vector<index_t> cols = {1};
  std::vector<value_t> vals = {2.0};
  for (Level level : RunnableLevels()) {
    std::vector<value_t> c = RandomVector(n, 14);
    const std::vector<value_t> before = c;
    simd::SpmmRowPanelLevel(level, vals.data(), cols.data(), 1, 1, 0,
                            b.View(), c.data());
    EXPECT_EQ(before, c);
  }
}

// ---------------------------------------------------------------------------
// CsrRowDotLevel / DotLevel: ULP-bounded against the scalar reference.

TEST(SimdCsrRowDot, ShortRowsAreBitwiseScalar) {
  // Below kGatherMinNnz every level takes the scalar path.
  const index_t n = simd::kGatherMinNnz - 1;
  std::vector<value_t> values = RandomVector(n, 1);
  std::vector<value_t> x = RandomVector(64, 2);
  std::vector<index_t> cols;
  for (index_t p = 0; p < n; ++p) cols.push_back(p * 7 % 64);
  const value_t ref =
      simd::CsrRowDotLevel(Level::kScalar, values.data(), cols.data(), 0, n,
                           x.data());
  for (Level level : RunnableLevels()) {
    EXPECT_EQ(ref, simd::CsrRowDotLevel(level, values.data(), cols.data(), 0,
                                        n, x.data()));
  }
}

TEST(SimdCsrRowDot, UlpBoundedAcrossLevels) {
  Rng rng(99);
  for (index_t nnz : {8, 9, 12, 15, 64, 257}) {
    const index_t width = 4 * nnz;
    std::vector<value_t> values = RandomVector(nnz, 10 + nnz);
    std::vector<value_t> x = RandomVector(width, 20 + nnz);
    std::vector<index_t> cols(nnz);
    for (index_t p = 0; p < nnz; ++p) {
      cols[p] = static_cast<index_t>(rng.NextBounded(width));
    }
    std::sort(cols.begin(), cols.end());
    // Offset start position: kernels must honor [p0, p1), not [0, nnz).
    for (index_t p0 : {index_t{0}, index_t{1}}) {
      const value_t ref = simd::CsrRowDotLevel(
          Level::kScalar, values.data(), cols.data(), p0, nnz, x.data());
      for (Level level : RunnableLevels()) {
        const value_t got = simd::CsrRowDotLevel(level, values.data(),
                                                 cols.data(), p0, nnz,
                                                 x.data());
        // Reassociation into 4 lane partials: error grows like sqrt(n) ulps
        // in practice; 16 + nnz/4 is a loose deterministic envelope.
        EXPECT_LE(UlpDistance(ref, got), 16 + nnz / 4)
            << "level=" << simd::LevelName(level) << " nnz=" << nnz
            << " p0=" << p0 << " ref=" << ref << " got=" << got;
      }
    }
  }
}

TEST(SimdDot, UlpBoundedAcrossLevels) {
  for (index_t n : {0, 1, 4, 7, 8, 11, 12, 64, 1001}) {
    std::vector<value_t> a = RandomVector(n, 5 + n);
    std::vector<value_t> x = RandomVector(n, 6 + n);
    const value_t ref = simd::DotLevel(Level::kScalar, a.data(), x.data(), n);
    for (Level level : RunnableLevels()) {
      const value_t got = simd::DotLevel(level, a.data(), x.data(), n);
      EXPECT_LE(UlpDistance(ref, got), 16 + n / 4)
          << "level=" << simd::LevelName(level) << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// SparseAccumulator::AddScaledDenseRow.

TEST(SimdSpaScatter, DenseModeMatchesPerElementAdd) {
  for (index_t width : {0, 1, 7, 8, 64, 300}) {
    std::vector<value_t> row = RandomVector(width, 70 + width);
    const value_t scale = 1.75;
    SparseAccumulator per_element(width);
    SparseAccumulator bulk(width);
    // Pre-touch a few columns so the scatter runs on a partially occupied
    // accumulator.
    for (index_t j = 0; j < width; j += 5) {
      per_element.Add(j, 0.5);
      bulk.Add(j, 0.5);
    }
    for (index_t j = 0; j < width; ++j) per_element.Add(j, scale * row[j]);
    bulk.AddScaledDenseRow(row.data(), scale);
    ASSERT_EQ(per_element.touched(), bulk.touched());
    std::vector<value_t> a(width, 0.0);
    std::vector<value_t> b(width, 0.0);
    per_element.FlushToDenseRow(a.data());
    bulk.FlushToDenseRow(b.data());
    for (index_t j = 0; j < width; ++j) {
      ASSERT_EQ(a[j], b[j]) << "width=" << width << " j=" << j;
    }
  }
}

TEST(SimdSpaScatter, ScatterTwiceAccumulates) {
  const index_t width = 37;
  std::vector<value_t> row = RandomVector(width, 3);
  SparseAccumulator spa(width);
  spa.AddScaledDenseRow(row.data(), 2.0);
  spa.AddScaledDenseRow(row.data(), -1.0);
  EXPECT_EQ(spa.touched(), width);
  std::vector<value_t> out(width, 0.0);
  spa.FlushToDenseRow(out.data());
  for (index_t j = 0; j < width; ++j) {
    const value_t expect = 2.0 * row[j] + -1.0 * row[j];
    ASSERT_EQ(expect, out[j]);
  }
}

TEST(SimdSpaScatter, HashModeMatchesPerElementAdd) {
  const index_t width = 1024;
  SparseAccumulator per_element;
  SparseAccumulator bulk;
  per_element.ResizeAdaptive(width, 4.0);
  bulk.ResizeAdaptive(width, 4.0);
  ASSERT_EQ(SparseAccumulator::Mode::kHash, bulk.mode());
  std::vector<value_t> row = RandomVector(width, 11);
  const value_t scale = -0.25;
  for (index_t j = 0; j < width; ++j) per_element.Add(j, scale * row[j]);
  bulk.AddScaledDenseRow(row.data(), scale);
  std::vector<value_t> a(width, 0.0);
  std::vector<value_t> b(width, 0.0);
  per_element.FlushToDenseRow(a.data());
  bulk.FlushToDenseRow(b.data());
  for (index_t j = 0; j < width; ++j) ASSERT_EQ(a[j], b[j]);
}

// ---------------------------------------------------------------------------
// ResolveLevel: env parsing and CPU/build gating.

TEST(SimdResolve, AutoPicksBestAvailable) {
  std::string w;
  EXPECT_EQ(Level::kAvx2, simd::ResolveLevel(nullptr, true, true, &w));
  EXPECT_EQ(Level::kAvx2, simd::ResolveLevel("auto", true, true, &w));
  EXPECT_EQ(Level::kAvx2, simd::ResolveLevel("AUTO", true, true, &w));
  EXPECT_EQ(Level::kGeneric, simd::ResolveLevel(nullptr, false, true, &w));
  EXPECT_EQ(Level::kGeneric, simd::ResolveLevel(nullptr, true, false, &w));
  EXPECT_EQ(Level::kGeneric, simd::ResolveLevel("", false, false, &w));
  EXPECT_TRUE(w.empty());
}

TEST(SimdResolve, ExplicitOverrides) {
  std::string w;
  EXPECT_EQ(Level::kScalar, simd::ResolveLevel("scalar", true, true, &w));
  EXPECT_EQ(Level::kGeneric, simd::ResolveLevel("generic", true, true, &w));
  EXPECT_EQ(Level::kAvx2, simd::ResolveLevel("avx2", true, true, &w));
  EXPECT_EQ(Level::kScalar, simd::ResolveLevel("Scalar", false, false, &w));
  EXPECT_TRUE(w.empty());
}

TEST(SimdResolve, UnsatisfiableAvx2FallsBackWithWarning) {
  std::string w;
  EXPECT_EQ(Level::kGeneric, simd::ResolveLevel("avx2", false, true, &w));
  EXPECT_NE(std::string::npos, w.find("AVX2"));
  w.clear();
  EXPECT_EQ(Level::kGeneric, simd::ResolveLevel("avx2", true, false, &w));
  EXPECT_NE(std::string::npos, w.find("without AVX2 codegen"));
}

TEST(SimdResolve, UnknownValueWarnsAndUsesAuto) {
  std::string w;
  EXPECT_EQ(Level::kAvx2, simd::ResolveLevel("sse9000", true, true, &w));
  EXPECT_NE(std::string::npos, w.find("sse9000"));
  w.clear();
  EXPECT_EQ(Level::kGeneric, simd::ResolveLevel("sse9000", false, true, &w));
}

TEST(SimdResolve, ActiveLevelIsRunnable) {
  const Level level = simd::ActiveLevel();
  const auto runnable = RunnableLevels();
  EXPECT_NE(runnable.end(),
            std::find(runnable.begin(), runnable.end(), level));
  // Stable across calls (resolved once per process).
  EXPECT_EQ(level, simd::ActiveLevel());
}

}  // namespace
}  // namespace atmx
