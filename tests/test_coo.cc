#include "storage/coo_matrix.h"

#include <gtest/gtest.h>

#include "morton/morton.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

TEST(CooMatrixTest, BasicAccounting) {
  CooMatrix coo(4, 5);
  EXPECT_EQ(coo.rows(), 4);
  EXPECT_EQ(coo.cols(), 5);
  EXPECT_EQ(coo.nnz(), 0);
  coo.Add(0, 0, 1.0);
  coo.Add(3, 4, 2.0);
  EXPECT_EQ(coo.nnz(), 2);
  EXPECT_DOUBLE_EQ(coo.Density(), 2.0 / 20.0);
  EXPECT_EQ(coo.TripleBytes(), 32u);
}

TEST(CooMatrixTest, SortByMortonOrdersZValues) {
  CooMatrix coo = atmx::testing::RandomCoo(64, 64, 300, 11);
  coo.SortByMorton();
  EXPECT_TRUE(coo.IsMortonSorted());
  for (std::size_t i = 1; i < coo.entries().size(); ++i) {
    EXPECT_LE(MortonEncode(coo.entries()[i - 1].row, coo.entries()[i - 1].col),
              MortonEncode(coo.entries()[i].row, coo.entries()[i].col));
  }
}

TEST(CooMatrixTest, SortRowMajor) {
  CooMatrix coo(4, 4);
  coo.Add(3, 1, 1.0);
  coo.Add(0, 2, 2.0);
  coo.Add(0, 1, 3.0);
  coo.SortRowMajor();
  EXPECT_EQ(coo.entries()[0].row, 0);
  EXPECT_EQ(coo.entries()[0].col, 1);
  EXPECT_EQ(coo.entries()[1].col, 2);
  EXPECT_EQ(coo.entries()[2].row, 3);
}

TEST(CooMatrixTest, CoalesceSumsDuplicates) {
  CooMatrix coo(3, 3);
  coo.Add(1, 1, 1.0);
  coo.Add(1, 1, 2.5);
  coo.Add(0, 2, 1.0);
  coo.Add(1, 1, -0.5);
  coo.CoalesceDuplicates();
  EXPECT_EQ(coo.nnz(), 2);
  bool found = false;
  for (const CooEntry& e : coo.entries()) {
    if (e.row == 1 && e.col == 1) {
      EXPECT_DOUBLE_EQ(e.value, 3.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CooMatrixTest, EmptyMatrixOperationsAreSafe) {
  CooMatrix coo(0, 0);
  coo.SortByMorton();
  coo.CoalesceDuplicates();
  EXPECT_EQ(coo.nnz(), 0);
  EXPECT_DOUBLE_EQ(coo.Density(), 0.0);
}

}  // namespace
}  // namespace atmx
