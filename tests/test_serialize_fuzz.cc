// Robustness fuzzing for the binary serialization format: every
// deserializer must return a Status error (or, for benign bit flips, a
// structurally valid matrix) on truncated or corrupted input — never
// crash, abort, or make an absurd allocation.

#include "storage/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"
#include "validate/validate.h"

namespace atmx {
namespace {

using ::atmx::testing::RandomCoo;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

enum class Kind { kCoo, kCsr, kDense, kAtm };

// Loads `path` as `kind`; returns true when the loader reported a clean
// Status (ok or error). For ok results, the payload must validate — a
// loader must never hand back a corrupt structure.
::testing::AssertionResult LoadIsWellBehaved(Kind kind,
                                             const std::string& path) {
  switch (kind) {
    case Kind::kCoo: {
      Result<CooMatrix> r = LoadCooMatrix(path);
      if (r.ok()) {
        // Bit-flipped value bytes may legitimately decode to NaN/Inf, so
        // only the structural guarantee (in-bounds coordinates) applies.
        const CooMatrix& m = r.value();
        for (const CooEntry& e : m.entries()) {
          if (e.row < 0 || e.row >= m.rows() || e.col < 0 ||
              e.col >= m.cols()) {
            return ::testing::AssertionFailure()
                   << "loader accepted an out-of-bounds COO entry";
          }
        }
      }
      break;
    }
    case Kind::kCsr: {
      Result<CsrMatrix> r = LoadCsrMatrix(path);
      if (r.ok()) {
        const Status s = ValidateCsr(r.value());
        if (!s.ok()) {
          return ::testing::AssertionFailure()
                 << "loader accepted a corrupt CSR: " << s.ToString();
        }
      }
      break;
    }
    case Kind::kDense: {
      Result<DenseMatrix> r = LoadDenseMatrix(path);
      if (r.ok()) {
        // NaN payloads are representable bytes; structural validity here
        // means the shape/allocation is sane, which the load guarantees.
        if (r.value().rows() < 0 || r.value().cols() < 0) {
          return ::testing::AssertionFailure() << "negative dense shape";
        }
      }
      break;
    }
    case Kind::kAtm: {
      Result<ATMatrix> r = LoadATMatrix(path);
      if (r.ok()) {
        AtmValidateOptions options;
        // Values may legitimately be bit-flipped to NaN without breaking
        // structure; the deep checks' finiteness test would flag those, so
        // verify geometry/accounting only.
        options.deep = false;
        const Status s = ValidateAtMatrix(r.value(), options);
        if (!s.ok()) {
          return ::testing::AssertionFailure()
                 << "loader accepted a corrupt AT MATRIX: " << s.ToString();
        }
      }
      break;
    }
  }
  return ::testing::AssertionSuccess();
}

struct Subject {
  Kind kind;
  std::string path;
};

std::vector<Subject> WriteSubjects() {
  std::vector<Subject> subjects;

  CooMatrix coo = RandomCoo(23, 31, 140, /*seed=*/1);
  const std::string coo_path = TempPath("fuzz.coo.bin");
  EXPECT_TRUE(SaveMatrix(coo, coo_path).ok());
  subjects.push_back({Kind::kCoo, coo_path});

  CsrMatrix csr = CooToCsr(RandomCoo(28, 19, 120, /*seed=*/2));
  const std::string csr_path = TempPath("fuzz.csr.bin");
  EXPECT_TRUE(SaveMatrix(csr, csr_path).ok());
  subjects.push_back({Kind::kCsr, csr_path});

  DenseMatrix dense = GenerateFullDense(13, 17, /*seed=*/3);
  const std::string dense_path = TempPath("fuzz.dense.bin");
  EXPECT_TRUE(SaveMatrix(dense, dense_path).ok());
  subjects.push_back({Kind::kDense, dense_path});

  AtmConfig config;
  config.b_atomic = 16;
  ATMatrix atm =
      PartitionToAtm(GenerateDiagonalDenseBlocks(80, 3, 16, 0.9, 200,
                                                 /*seed=*/4),
                     config);
  const std::string atm_path = TempPath("fuzz.atm.bin");
  EXPECT_TRUE(SaveMatrix(atm, atm_path).ok());
  subjects.push_back({Kind::kAtm, atm_path});

  return subjects;
}

TEST(SerializeFuzzTest, RoundTripThenValidate) {
  AtmConfig config;
  config.b_atomic = 16;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed * 53 + 5);
    const index_t rows = 8 + static_cast<index_t>(rng.NextBounded(64));
    const index_t cols = 8 + static_cast<index_t>(rng.NextBounded(64));
    const index_t nnz = 1 + static_cast<index_t>(rng.NextBounded(
                                static_cast<std::uint64_t>(rows * cols / 3)));
    CooMatrix coo = RandomCoo(rows, cols, nnz, rng.Next());

    const std::string csr_path = TempPath("rt.csr.bin");
    ASSERT_TRUE(SaveMatrix(CooToCsr(coo), csr_path).ok());
    Result<CsrMatrix> csr = LoadCsrMatrix(csr_path);
    ASSERT_TRUE(csr.ok()) << csr.status().ToString();
    EXPECT_TRUE(ValidateCsr(csr.value()).ok());

    const std::string atm_path = TempPath("rt.atm.bin");
    ATMatrix atm = PartitionToAtm(coo, config);
    ASSERT_TRUE(SaveMatrix(atm, atm_path).ok());
    Result<ATMatrix> loaded = LoadATMatrix(atm_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const Status deep = ValidateAtMatrix(loaded.value());
    EXPECT_TRUE(deep.ok()) << deep.ToString();
    EXPECT_EQ(loaded.value().nnz(), atm.nnz());
  }
}

TEST(SerializeFuzzTest, TruncationAtEveryBoundaryReturnsStatus) {
  const std::vector<Subject> subjects = WriteSubjects();
  const std::string path = TempPath("truncated.bin");
  for (const Subject& subject : subjects) {
    const std::vector<char> bytes = ReadFile(subject.path);
    ASSERT_FALSE(bytes.empty());
    // Cut at every 8-byte boundary (the format's word size) plus a few
    // unaligned offsets; every prefix must load without crashing and —
    // being a strict prefix — must actually fail.
    std::vector<std::size_t> cuts;
    for (std::size_t cut = 0; cut < bytes.size(); cut += 8) {
      cuts.push_back(cut);
    }
    cuts.push_back(1);
    cuts.push_back(bytes.size() - 1);
    for (std::size_t cut : cuts) {
      WriteFile(path, std::vector<char>(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(cut)));
      EXPECT_TRUE(LoadIsWellBehaved(subject.kind, path));
      switch (subject.kind) {
        case Kind::kCoo:
          EXPECT_FALSE(LoadCooMatrix(path).ok()) << "cut at " << cut;
          break;
        case Kind::kCsr:
          EXPECT_FALSE(LoadCsrMatrix(path).ok()) << "cut at " << cut;
          break;
        case Kind::kDense:
          EXPECT_FALSE(LoadDenseMatrix(path).ok()) << "cut at " << cut;
          break;
        case Kind::kAtm:
          EXPECT_FALSE(LoadATMatrix(path).ok()) << "cut at " << cut;
          break;
      }
    }
  }
}

TEST(SerializeFuzzTest, RandomByteCorruptionNeverCrashes) {
  const std::vector<Subject> subjects = WriteSubjects();
  const std::string path = TempPath("corrupt.bin");
  Rng rng(1234);
  for (const Subject& subject : subjects) {
    const std::vector<char> original = ReadFile(subject.path);
    ASSERT_FALSE(original.empty());
    for (int round = 0; round < 200; ++round) {
      std::vector<char> bytes = original;
      // Flip 1-4 random bytes anywhere in the file.
      const int flips = 1 + static_cast<int>(rng.NextBounded(4));
      for (int f = 0; f < flips; ++f) {
        const std::size_t pos = static_cast<std::size_t>(
            rng.NextBounded(static_cast<std::uint64_t>(bytes.size())));
        bytes[pos] = static_cast<char>(rng.Next());
      }
      WriteFile(path, bytes);
      EXPECT_TRUE(LoadIsWellBehaved(subject.kind, path))
          << "round " << round;
    }
  }
}

TEST(SerializeFuzzTest, DeclaredLengthBeyondFileIsRejected) {
  // A huge declared array length in a small file must be rejected before
  // any allocation is attempted.
  CsrMatrix csr = CooToCsr(RandomCoo(10, 10, 30, /*seed=*/6));
  const std::string path = TempPath("hugelen.csr.bin");
  ASSERT_TRUE(SaveMatrix(csr, path).ok());
  std::vector<char> bytes = ReadFile(path);
  // Layout: magic(8) tag(8) rows(8) cols(8) row_ptr_len(8) ...
  const std::uint64_t huge = 1ULL << 62;
  std::memcpy(bytes.data() + 32, &huge, sizeof(huge));
  WriteFile(path, bytes);
  Result<CsrMatrix> r = LoadCsrMatrix(path);
  ASSERT_FALSE(r.ok());
}

TEST(SerializeFuzzTest, WrongTypeTagIsRejected) {
  CooMatrix coo = RandomCoo(6, 6, 10, /*seed=*/7);
  const std::string path = TempPath("wrongtag.bin");
  ASSERT_TRUE(SaveMatrix(coo, path).ok());
  EXPECT_FALSE(LoadCsrMatrix(path).ok());
  EXPECT_FALSE(LoadDenseMatrix(path).ok());
  EXPECT_FALSE(LoadATMatrix(path).ok());
  EXPECT_TRUE(LoadCooMatrix(path).ok());
}

}  // namespace
}  // namespace atmx
