// Correctness of all eight multiplication kernels, including referenced
// submatrix (window) multiplication, validated against the naive reference
// multiply over random matrices (property-style parameterized sweeps).

#include <gtest/gtest.h>

#include <functional>
#include <tuple>
#include <vector>

#include "kernels/dense_kernels.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/mixed_kernels.h"
#include "kernels/sparse_kernels.h"
#include "ops/reference_mult.h"
#include "storage/convert.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

struct KernelCase {
  index_t m, k, n;
  double density_a, density_b;
  std::uint64_t seed;
};

class KernelParamTest : public ::testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    const KernelCase& p = GetParam();
    a_coo_ = RandomCoo(p.m, p.k,
                       static_cast<index_t>(p.density_a * p.m * p.k) + 1,
                       p.seed);
    b_coo_ = RandomCoo(p.k, p.n,
                       static_cast<index_t>(p.density_b * p.k * p.n) + 1,
                       p.seed + 1);
    a_dense_ = CooToDense(a_coo_);
    b_dense_ = CooToDense(b_coo_);
    a_csr_ = CooToCsr(a_coo_);
    b_csr_ = CooToCsr(b_coo_);
    expected_ = ReferenceMultiply(a_dense_, b_dense_);
  }

  CooMatrix a_coo_, b_coo_;
  DenseMatrix a_dense_, b_dense_;
  CsrMatrix a_csr_, b_csr_;
  DenseMatrix expected_;
};

TEST_P(KernelParamTest, DddGemm) {
  const KernelCase& p = GetParam();
  DenseMatrix c(p.m, p.n);
  DddGemm(a_dense_.View(), b_dense_.View(), c.MutView(), 0, p.m);
  ExpectDenseNear(expected_, c);
}

TEST_P(KernelParamTest, SddGemm) {
  const KernelCase& p = GetParam();
  DenseMatrix c(p.m, p.n);
  SddGemm(a_csr_, Window::Full(p.m, p.k), b_dense_.View(), c.MutView(), 0,
          p.m);
  ExpectDenseNear(expected_, c);
}

TEST_P(KernelParamTest, DsdGemm) {
  const KernelCase& p = GetParam();
  DenseMatrix c(p.m, p.n);
  DsdGemm(a_dense_.View(), b_csr_, Window::Full(p.k, p.n), c.MutView(), 0,
          p.m);
  ExpectDenseNear(expected_, c);
}

TEST_P(KernelParamTest, SsdGemm) {
  const KernelCase& p = GetParam();
  DenseMatrix c(p.m, p.n);
  SsdGemm(a_csr_, Window::Full(p.m, p.k), b_csr_, Window::Full(p.k, p.n),
          c.MutView(), 0, p.m);
  ExpectDenseNear(expected_, c);
}

TEST_P(KernelParamTest, SpGemmCsrBaseline) {
  CsrMatrix c = SpGemmCsr(a_csr_, b_csr_);
  EXPECT_TRUE(c.CheckValid());
  ExpectDenseNear(expected_, CsrToDense(c));
}

TEST_P(KernelParamTest, SpGemmDenseBaseline) {
  ExpectDenseNear(expected_, SpGemmDense(a_csr_, b_csr_));
}

// Sparse-target kernels, exercised row by row through the SPA.
TEST_P(KernelParamTest, SparseTargetRowKernels) {
  const KernelCase& p = GetParam();
  const Window wa = Window::Full(p.m, p.k);
  const Window wb = Window::Full(p.k, p.n);
  SparseAccumulator spa(p.n);

  struct Variant {
    const char* name;
    std::function<void(index_t)> accumulate;
  };
  std::vector<Variant> variants;
  variants.push_back({"sss", [&](index_t i) {
                        SssAccumulateRow(a_csr_, wa, b_csr_, wb, i, &spa);
                      }});
  variants.push_back({"sds", [&](index_t i) {
                        SdsAccumulateRow(a_csr_, wa, b_dense_.View(), i,
                                         &spa);
                      }});
  variants.push_back({"dss", [&](index_t i) {
                        DssAccumulateRow(a_dense_.View(), b_csr_, wb, i,
                                         &spa);
                      }});
  variants.push_back({"dds", [&](index_t i) {
                        DdsAccumulateRow(a_dense_.View(), b_dense_.View(), i,
                                         &spa);
                      }});

  for (const Variant& variant : variants) {
    CsrBuilder builder(p.m, p.n);
    for (index_t i = 0; i < p.m; ++i) {
      variant.accumulate(i);
      spa.FlushToBuilder(&builder);
      builder.FinishRowsUpTo(i + 1);
    }
    CsrMatrix c = builder.Build();
    EXPECT_TRUE(c.CheckValid()) << variant.name;
    ExpectDenseNear(expected_, CsrToDense(c));
  }
}

// Window property: multiplying the window [r0,r1)x[k0,k1) * [k0,k1)x[c0,c1)
// must equal the same sub-multiplication done on dense slices.
TEST_P(KernelParamTest, ReferencedSubmatrixMultiplication) {
  const KernelCase& p = GetParam();
  if (p.m < 4 || p.k < 4 || p.n < 4) return;
  const index_t r0 = p.m / 4, r1 = p.m - p.m / 4;
  const index_t k0 = p.k / 4, k1 = p.k - p.k / 4;
  const index_t c0 = p.n / 4, c1 = p.n - p.n / 4;
  const Window wa{r0, r1, k0, k1};
  const Window wb{k0, k1, c0, c1};

  // Reference: dense window multiply.
  DenseMatrix a_slice(r1 - r0, k1 - k0);
  for (index_t i = 0; i < a_slice.rows(); ++i) {
    for (index_t j = 0; j < a_slice.cols(); ++j) {
      a_slice.At(i, j) = a_dense_.At(r0 + i, k0 + j);
    }
  }
  DenseMatrix b_slice(k1 - k0, c1 - c0);
  for (index_t i = 0; i < b_slice.rows(); ++i) {
    for (index_t j = 0; j < b_slice.cols(); ++j) {
      b_slice.At(i, j) = b_dense_.At(k0 + i, c0 + j);
    }
  }
  DenseMatrix expected = ReferenceMultiply(a_slice, b_slice);

  // ssd with windows.
  DenseMatrix c1m(r1 - r0, c1 - c0);
  SsdGemm(a_csr_, wa, b_csr_, wb, c1m.MutView(), 0, r1 - r0);
  ExpectDenseNear(expected, c1m);

  // sdd: dense B window via DenseView::Window.
  DenseMatrix c2m(r1 - r0, c1 - c0);
  SddGemm(a_csr_, wa, b_dense_.View().Window(k0, c0, k1 - k0, c1 - c0),
          c2m.MutView(), 0, r1 - r0);
  ExpectDenseNear(expected, c2m);

  // dsd: dense A window, sparse B window.
  DenseMatrix c3m(r1 - r0, c1 - c0);
  DsdGemm(a_dense_.View().Window(r0, k0, r1 - r0, k1 - k0), b_csr_, wb,
          c3m.MutView(), 0, r1 - r0);
  ExpectDenseNear(expected, c3m);

  // ddd windows.
  DenseMatrix c4m(r1 - r0, c1 - c0);
  DddGemm(a_dense_.View().Window(r0, k0, r1 - r0, k1 - k0),
          b_dense_.View().Window(k0, c0, k1 - k0, c1 - c0), c4m.MutView(), 0,
          r1 - r0);
  ExpectDenseNear(expected, c4m);

  // sss row kernel with windows.
  SparseAccumulator spa(c1 - c0);
  CsrBuilder builder(r1 - r0, c1 - c0);
  for (index_t i = 0; i < r1 - r0; ++i) {
    SssAccumulateRow(a_csr_, wa, b_csr_, wb, i, &spa);
    spa.FlushToBuilder(&builder);
    builder.FinishRowsUpTo(i + 1);
  }
  ExpectDenseNear(expected, CsrToDense(builder.Build()));
}

TEST_P(KernelParamTest, DispatchMatchesDirectKernels) {
  const KernelCase& p = GetParam();
  const Operand a_sp = Operand::Sparse(&a_csr_, Window::Full(p.m, p.k));
  const Operand a_d = Operand::Dense(a_dense_.View());
  const Operand b_sp = Operand::Sparse(&b_csr_, Window::Full(p.k, p.n));
  const Operand b_d = Operand::Dense(b_dense_.View());
  for (const Operand& a : {a_sp, a_d}) {
    for (const Operand& b : {b_sp, b_d}) {
      DenseMatrix c(p.m, p.n);
      MultiplyIntoDense(a, b, c.MutView(), 0, p.m);
      ExpectDenseNear(expected_, c);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelParamTest,
    ::testing::Values(
        KernelCase{16, 16, 16, 0.2, 0.2, 1},
        KernelCase{32, 16, 8, 0.1, 0.3, 2},
        KernelCase{7, 13, 21, 0.15, 0.15, 3},    // odd sizes
        KernelCase{64, 64, 64, 0.05, 0.05, 4},
        KernelCase{48, 96, 24, 0.02, 0.5, 5},    // asymmetric densities
        KernelCase{100, 50, 75, 0.3, 0.01, 6},
        KernelCase{33, 1, 33, 0.5, 0.5, 7},      // degenerate contraction
        KernelCase{1, 64, 1, 0.2, 0.2, 8},       // vector-ish shapes
        KernelCase{128, 32, 128, 0.008, 0.008, 9}));  // hypersparse

TEST(KernelDispatchTest, KernelTypeNamesAndComposition) {
  EXPECT_EQ(MakeKernelType(true, true, true), KernelType::kDDD);
  EXPECT_EQ(MakeKernelType(false, false, false), KernelType::kSSS);
  EXPECT_EQ(MakeKernelType(false, true, true), KernelType::kSDD);
  EXPECT_EQ(MakeKernelType(true, false, false), KernelType::kDSS);
  EXPECT_STREQ(KernelTypeName(KernelType::kSSS), "spspsp_gemm");
  EXPECT_STREQ(KernelTypeName(KernelType::kSSD), "spspd_gemm");
  EXPECT_STREQ(KernelTypeName(KernelType::kDDD), "ddd_gemm");
}

TEST(KernelEdgeTest, EmptyOperandsYieldZero) {
  CsrMatrix a(8, 8);
  CsrMatrix b(8, 8);
  DenseMatrix c(8, 8);
  SsdGemm(a, Window::Full(8, 8), b, Window::Full(8, 8), c.MutView(), 0, 8);
  EXPECT_EQ(c.CountNonZeros(), 0);
  CsrMatrix csr = SpGemmCsr(a, b);
  EXPECT_EQ(csr.nnz(), 0);
}

TEST(KernelEdgeTest, RowRangeSubsetOnlyTouchesThoseRows) {
  CooMatrix coo = RandomCoo(16, 16, 60, 11);
  CsrMatrix a = CooToCsr(coo);
  DenseMatrix b = CooToDense(RandomCoo(16, 16, 60, 12));
  DenseMatrix c(16, 16);
  SddGemm(a, Window::Full(16, 16), b.View(), c.MutView(), 4, 8);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 16; ++j) EXPECT_EQ(c.At(i, j), 0.0);
  }
  for (index_t i = 8; i < 16; ++i) {
    for (index_t j = 0; j < 16; ++j) EXPECT_EQ(c.At(i, j), 0.0);
  }
}

TEST(KernelEdgeTest, AccumulationIntoNonZeroTarget) {
  // C' = C + A*B semantics: kernels must accumulate, not overwrite.
  CooMatrix coo = RandomCoo(8, 8, 20, 13);
  CsrMatrix a = CooToCsr(coo);
  DenseMatrix b = CooToDense(RandomCoo(8, 8, 20, 14));
  DenseMatrix c(8, 8);
  c.Fill(1.0);
  DenseMatrix expected = ReferenceMultiply(CooToDense(coo), b);
  SddGemm(a, Window::Full(8, 8), b.View(), c.MutView(), 0, 8);
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c.At(i, j), expected.At(i, j) + 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace atmx
