// Hardware-counter layer: one-time availability probe, deterministic stub
// behaviour when collection is off, synthetic-delta metric accumulation
// (including the derived rate gauges), and RAII span attribution against
// live counters where the host provides any.

#include "obs/perf_counters.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace atmx {
namespace {

using obs::MetricsRegistry;
using obs::PerfCounterId;
using obs::PerfDelta;
using obs::PerfSnapshot;
using obs::TraceRecorder;

// Restores the collection switch even when a test fails mid-way.
struct CollectionGuard {
  ~CollectionGuard() { obs::SetPerfCollectionEnabled(true); }
};

std::uint64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name).Value();
}

double GaugeValue(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name).Value();
}

TEST(PerfCountersTest, ProbePublishesAvailabilityGauges) {
  const bool available = obs::PerfCountersAvailable();
  EXPECT_EQ(GaugeValue("perf.available"), available ? 1.0 : 0.0);
  // hw_available implies available.
  if (GaugeValue("perf.hw_available") != 0.0) {
    EXPECT_TRUE(available);
  }
  // The probe is idempotent.
  EXPECT_EQ(obs::PerfCountersAvailable(), available);
}

TEST(PerfCountersTest, CounterNamesAreStable) {
  EXPECT_STREQ(obs::PerfCounterName(PerfCounterId::kCycles), "cycles");
  EXPECT_STREQ(obs::PerfCounterName(PerfCounterId::kInstructions),
               "instructions");
  EXPECT_STREQ(obs::PerfCounterName(PerfCounterId::kLlcLoads), "llc_loads");
  EXPECT_STREQ(obs::PerfCounterName(PerfCounterId::kLlcMisses),
               "llc_misses");
  EXPECT_STREQ(obs::PerfCounterName(PerfCounterId::kDtlbMisses),
               "dtlb_misses");
  EXPECT_STREQ(obs::PerfCounterName(PerfCounterId::kTaskClockNs),
               "task_clock_ns");
}

TEST(PerfCountersTest, StubModeIsDeterministic) {
  CollectionGuard guard;
  obs::SetPerfCollectionEnabled(false);
  EXPECT_FALSE(obs::PerfCollectionActive());
  EXPECT_EQ(obs::ThreadPerfCounters(), nullptr);

  const PerfSnapshot snap = obs::PerfBeginSnapshot();
  EXPECT_FALSE(snap.valid);
  EXPECT_EQ(snap.present, 0u);
  for (double v : snap.scaled) EXPECT_EQ(v, 0.0);

  const PerfDelta delta = obs::PerfDeltaSince(snap);
  EXPECT_FALSE(delta.valid);
  EXPECT_EQ(delta.present, 0u);
  for (std::uint64_t v : delta.value) EXPECT_EQ(v, 0u);

  // Invalid deltas are dropped everywhere downstream.
  std::vector<obs::TraceArg> args;
  obs::AppendPerfArgs(delta, &args);
  EXPECT_TRUE(args.empty());
  const std::uint64_t before = CounterValue("kernel.stub_test.cycles");
  obs::AccumulatePerfMetrics("kernel.stub_test", delta);
  EXPECT_EQ(CounterValue("kernel.stub_test.cycles"), before);
}

TEST(PerfCountersTest, DeltaAccessors) {
  PerfDelta delta;
  delta.valid = true;
  delta.present = obs::PerfCounterBit(PerfCounterId::kCycles) |
                  obs::PerfCounterBit(PerfCounterId::kTaskClockNs);
  delta.value[static_cast<std::size_t>(PerfCounterId::kCycles)] = 42;
  EXPECT_TRUE(delta.has(PerfCounterId::kCycles));
  EXPECT_TRUE(delta.has(PerfCounterId::kTaskClockNs));
  EXPECT_FALSE(delta.has(PerfCounterId::kLlcMisses));
  EXPECT_EQ(delta[PerfCounterId::kCycles], 42u);
  EXPECT_EQ(delta[PerfCounterId::kTaskClockNs], 0u);
}

TEST(PerfCountersTest, AccumulateDerivesRateGauges) {
  // Synthetic deltas make the rate math deterministic regardless of host
  // counter availability. Unique prefix: registry counters start at zero.
  PerfDelta delta;
  delta.valid = true;
  delta.present = obs::PerfCounterBit(PerfCounterId::kCycles) |
                  obs::PerfCounterBit(PerfCounterId::kInstructions) |
                  obs::PerfCounterBit(PerfCounterId::kLlcLoads) |
                  obs::PerfCounterBit(PerfCounterId::kLlcMisses);
  delta.value[static_cast<std::size_t>(PerfCounterId::kCycles)] = 2000;
  delta.value[static_cast<std::size_t>(PerfCounterId::kInstructions)] = 4000;
  delta.value[static_cast<std::size_t>(PerfCounterId::kLlcLoads)] = 1000;
  delta.value[static_cast<std::size_t>(PerfCounterId::kLlcMisses)] = 250;

  obs::AccumulatePerfMetrics("kernel.rate_test", delta);
  EXPECT_EQ(CounterValue("kernel.rate_test.cycles"), 2000u);
  EXPECT_EQ(CounterValue("kernel.rate_test.instructions"), 4000u);
  EXPECT_EQ(CounterValue("kernel.rate_test.llc_loads"), 1000u);
  EXPECT_EQ(CounterValue("kernel.rate_test.llc_misses"), 250u);
  EXPECT_DOUBLE_EQ(GaugeValue("kernel.rate_test.llc_miss_rate"), 0.25);
  EXPECT_DOUBLE_EQ(GaugeValue("kernel.rate_test.ipc"), 2.0);

  // A second accumulation converges the gauges on the running totals.
  delta.value[static_cast<std::size_t>(PerfCounterId::kLlcMisses)] = 750;
  delta.value[static_cast<std::size_t>(PerfCounterId::kInstructions)] = 0;
  obs::AccumulatePerfMetrics("kernel.rate_test", delta);
  EXPECT_DOUBLE_EQ(GaugeValue("kernel.rate_test.llc_miss_rate"),
                   1000.0 / 2000.0);
  EXPECT_DOUBLE_EQ(GaugeValue("kernel.rate_test.ipc"), 1.0);
}

TEST(PerfCountersTest, ScopedSpanDegradesToPlainTimingSpan) {
  CollectionGuard guard;
  obs::SetPerfCollectionEnabled(false);
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable();
  {
    obs::ScopedPerfSpan span("test", "degraded_span", "kernel.degraded",
                             {{"tag", 7}});
  }
  recorder.Disable();
  bool found = false;
  for (const obs::TraceEvent& event : recorder.Snapshot()) {
    if (std::string(event.name) != "degraded_span") continue;
    found = true;
    EXPECT_NE(event.args_json.find("\"tag\":7"), std::string::npos);
    // No counter keys sneak into the stub path.
    EXPECT_EQ(event.args_json.find("task_clock_ns"), std::string::npos);
    EXPECT_EQ(event.args_json.find("cycles"), std::string::npos);
  }
  EXPECT_TRUE(found);
  recorder.Clear();
  EXPECT_EQ(CounterValue("kernel.degraded.cycles"), 0u);
  EXPECT_EQ(CounterValue("kernel.degraded.task_clock_ns"), 0u);
}

TEST(PerfCountersTest, LiveCountersAttributeToSpans) {
  if (!obs::PerfCountersAvailable()) {
    GTEST_SKIP() << "perf_event_open unavailable on this host";
  }
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable();
  volatile double sink = 0.0;
  {
    obs::ScopedPerfSpan outer("test", "live_outer", "kernel.live_outer");
    {
      obs::ScopedPerfSpan inner("test", "live_inner", "kernel.live_inner");
      for (int i = 0; i < 2000000; ++i) {
        sink = sink + static_cast<double>(i) * 0.5;
      }
    }
  }
  recorder.Disable();
  (void)sink;

  // The metric side: both prefixes accumulated something, and the outer
  // span (which encloses the inner) is at least as large.
  const std::uint64_t inner_clock =
      CounterValue("kernel.live_inner.task_clock_ns");
  const std::uint64_t outer_clock =
      CounterValue("kernel.live_outer.task_clock_ns");
  EXPECT_GT(inner_clock, 0u);
  EXPECT_GE(outer_clock, inner_clock);

  // The trace side: the span carries at least one counter arg.
  bool inner_found = false;
  for (const obs::TraceEvent& event : recorder.Snapshot()) {
    if (std::string(event.name) != "live_inner") continue;
    inner_found = true;
    EXPECT_NE(event.args_json.find("task_clock_ns"), std::string::npos);
  }
  EXPECT_TRUE(inner_found);
  recorder.Clear();
}

TEST(PerfCountersTest, LiveSnapshotDeltaRoundTrip) {
  if (!obs::PerfCountersAvailable()) {
    GTEST_SKIP() << "perf_event_open unavailable on this host";
  }
  const PerfSnapshot begin = obs::PerfBeginSnapshot();
  ASSERT_TRUE(begin.valid);
  ASSERT_NE(begin.present, 0u);
  volatile double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) sink = sink + static_cast<double>(i);
  (void)sink;
  const PerfDelta delta = obs::PerfDeltaSince(begin);
  ASSERT_TRUE(delta.valid);
  EXPECT_EQ(delta.present, begin.present);
  // Every absent slot stays zero.
  for (int i = 0; i < obs::kNumPerfCounters; ++i) {
    const auto id = static_cast<PerfCounterId>(i);
    if (!delta.has(id)) {
      EXPECT_EQ(delta[id], 0u);
    }
  }
}

}  // namespace
}  // namespace atmx
