#include "estimate/density_map.h"

#include <gtest/gtest.h>

#include "storage/convert.h"
#include "tests/test_util.h"

namespace atmx {
namespace {

TEST(DensityMapTest, GridGeometry) {
  DensityMap map(100, 70, 32);
  EXPECT_EQ(map.grid_rows(), 4);   // ceil(100/32)
  EXPECT_EQ(map.grid_cols(), 3);   // ceil(70/32)
  EXPECT_EQ(map.BlockHeight(0), 32);
  EXPECT_EQ(map.BlockHeight(3), 4);   // 100 - 96
  EXPECT_EQ(map.BlockWidth(2), 6);    // 70 - 64
  EXPECT_EQ(map.BlockArea(3, 2), 24);
}

TEST(DensityMapTest, FromCooCountsPerBlock) {
  CooMatrix coo(8, 8);
  coo.Add(0, 0, 1.0);
  coo.Add(1, 1, 1.0);
  coo.Add(0, 5, 1.0);
  coo.Add(7, 7, 1.0);
  DensityMap map = DensityMap::FromCoo(coo, 4);
  EXPECT_DOUBLE_EQ(map.At(0, 0), 2.0 / 16.0);
  EXPECT_DOUBLE_EQ(map.At(0, 1), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(map.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(map.At(1, 1), 1.0 / 16.0);
}

TEST(DensityMapTest, BoundaryBlocksUseClippedArea) {
  // 6x6 matrix with block 4: boundary blocks are 4x2, 2x4, 2x2.
  CooMatrix coo(6, 6);
  // Fill the bottom-right 2x2 corner completely.
  for (index_t i = 4; i < 6; ++i) {
    for (index_t j = 4; j < 6; ++j) coo.Add(i, j, 1.0);
  }
  DensityMap map = DensityMap::FromCoo(coo, 4);
  EXPECT_DOUBLE_EQ(map.At(1, 1), 1.0);  // full *relative to its own area*
}

TEST(DensityMapTest, ConsistentAcrossSources) {
  CooMatrix coo = atmx::testing::RandomCoo(60, 45, 400, 17);
  DensityMap from_coo = DensityMap::FromCoo(coo, 16);
  DensityMap from_csr = DensityMap::FromCsr(CooToCsr(coo), 16);
  DensityMap from_dense = DensityMap::FromDense(CooToDense(coo), 16);
  for (index_t bi = 0; bi < from_coo.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < from_coo.grid_cols(); ++bj) {
      EXPECT_DOUBLE_EQ(from_coo.At(bi, bj), from_csr.At(bi, bj));
      EXPECT_DOUBLE_EQ(from_coo.At(bi, bj), from_dense.At(bi, bj));
    }
  }
}

TEST(DensityMapTest, ExpectedNnzMatchesExactCount) {
  CooMatrix coo = atmx::testing::RandomCoo(100, 100, 1234, 5);
  DensityMap map = DensityMap::FromCoo(coo, 32);
  EXPECT_NEAR(map.ExpectedNnz(), 1234.0, 1e-6);
}

TEST(DensityMapTest, RegionDensityIsAreaWeighted) {
  CooMatrix coo(8, 4);  // two 4x4 blocks stacked
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) coo.Add(i, j, 1.0);  // top block full
  }
  DensityMap map = DensityMap::FromCoo(coo, 4);
  EXPECT_DOUBLE_EQ(map.RegionDensity(0, 0, 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(map.RegionDensity(1, 0, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(map.RegionDensity(0, 0, 2, 1), 0.5);
}

TEST(DensityMapTest, RegionDensityClipsAtGridEdge) {
  CooMatrix coo = atmx::testing::RandomCoo(40, 40, 100, 2);
  DensityMap map = DensityMap::FromCoo(coo, 16);
  // Span beyond the grid is clipped, not an error.
  const double full = map.RegionDensity(0, 0, 100, 100);
  EXPECT_NEAR(full, 100.0 / 1600.0, 1e-9);
}

}  // namespace
}  // namespace atmx
