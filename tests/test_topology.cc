#include <gtest/gtest.h>

#include "topology/numa_sim.h"
#include "topology/system_topology.h"
#include "topology/tile_size_policy.h"

namespace atmx {
namespace {

TEST(SystemTopologyTest, DetectReturnsSaneValues) {
  SystemTopology topo = SystemTopology::Detect();
  EXPECT_GE(topo.num_sockets, 1);
  EXPECT_GE(topo.cores_per_socket, 1);
  EXPECT_GT(topo.llc_bytes, 0);
}

TEST(SystemTopologyTest, PaperMachine) {
  SystemTopology topo = SystemTopology::PaperMachine();
  EXPECT_EQ(topo.num_sockets, 4);
  EXPECT_EQ(topo.cores_per_socket, 10);
  EXPECT_EQ(topo.llc_bytes, 24LL * 1024 * 1024);
  EXPECT_EQ(topo.TotalCores(), 40);
}

TEST(SystemTopologyTest, ApplyToConfig) {
  AtmConfig config;
  SystemTopology::PaperMachine().ApplyTo(&config);
  EXPECT_EQ(config.num_sockets, 4);
  EXPECT_EQ(config.llc_bytes, 24LL * 1024 * 1024);
  // With the paper topology applied, the derived b_atomic is 1024 (k=10).
  EXPECT_EQ(config.AtomicBlockSize(), 1024);
}

TEST(TileSizePolicyTest, PaperValues) {
  AtmConfig config;
  SystemTopology::PaperMachine().ApplyTo(&config);
  TileSizePolicy policy(config);
  // Eq. (1): sqrt(24 MB / (3 * 8 B)) = 1024.
  EXPECT_EQ(policy.max_dense_tile(), 1024);
  // Eq. (2) dimension bound: 24 MB / (3 * 8 B) = 1 M rows, so even a
  // 300k x 300k hypersparse matrix passes the dimension criterion (the
  // paper's example); the memory criterion caps the element count at
  // LLC / alpha = 8 MB (512k elements of 16 B).
  EXPECT_EQ(policy.max_sparse_dim(), 1024 * 1024);
  EXPECT_EQ(policy.max_sparse_bytes(), 8LL * 1024 * 1024);
  EXPECT_TRUE(policy.SparseTileFits(300000, 400000));
  EXPECT_FALSE(policy.SparseTileFits(300000, 900000));
  EXPECT_FALSE(policy.SparseTileFits(2000000, 1000));  // dimension bound
  EXPECT_FALSE(policy.DenseTileFits(2048));
  EXPECT_TRUE(policy.DenseTileFits(1024));
}

TEST(TileSizePolicyTest, SparseMemoryBoundRejectsHeavyTiles) {
  AtmConfig config;
  config.llc_bytes = 1024 * 1024;
  config.b_atomic = 64;
  TileSizePolicy policy(config);
  // 1 MB / 3 bytes budget => about 21845 elements of 16 B.
  EXPECT_TRUE(policy.SparseTileFits(1000, 20000));
  EXPECT_FALSE(policy.SparseTileFits(1000, 30000));
}

TEST(NumaPlacementTest, RoundRobinTileRows) {
  NumaPlacement placement(4);
  EXPECT_EQ(placement.NodeOfTileRow(0), 0);
  EXPECT_EQ(placement.NodeOfTileRow(1), 1);
  EXPECT_EQ(placement.NodeOfTileRow(5), 1);
  EXPECT_EQ(placement.NodeOfTileRow(7), 3);
}

TEST(LocalityStatsTest, TracksLocalAndRemote) {
  LocalityStats stats;
  stats.RecordRead(0, 0, 100);
  stats.RecordRead(0, 1, 50);
  stats.RecordWrite(1, 1, 200);
  stats.RecordWrite(1, 0, 25);
  EXPECT_EQ(stats.local_read_bytes(), 100u);
  EXPECT_EQ(stats.remote_read_bytes(), 50u);
  EXPECT_EQ(stats.local_write_bytes(), 200u);
  EXPECT_EQ(stats.remote_write_bytes(), 25u);
  EXPECT_NEAR(stats.LocalFraction(), 300.0 / 375.0, 1e-12);
  stats.Reset();
  EXPECT_EQ(stats.local_read_bytes(), 0u);
  EXPECT_DOUBLE_EQ(stats.LocalFraction(), 1.0);
}

}  // namespace
}  // namespace atmx
