// Property fuzz for the water-level method: for random density maps and
// random limits, the solver's answer must match a brute-force scan over
// every candidate threshold — feasible whenever any threshold is, minimal
// memory when none is, and never dominated by a lower feasible level.

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "estimate/density_estimator.h"
#include "estimate/water_level.h"

namespace atmx {
namespace {

DensityMap RandomMap(index_t grid, std::uint64_t seed) {
  DensityMap map(grid * 16, grid * 16, 16);
  Rng rng(seed);
  for (index_t bi = 0; bi < grid; ++bi) {
    for (index_t bj = 0; bj < grid; ++bj) {
      // Mixture: many empty/faint blocks, some mid, some dense.
      const double u = rng.NextDouble();
      double rho;
      if (u < 0.4) {
        rho = 0.0;
      } else if (u < 0.7) {
        rho = rng.NextDouble() * 0.1;
      } else if (u < 0.9) {
        rho = 0.2 + rng.NextDouble() * 0.4;
      } else {
        rho = 0.7 + rng.NextDouble() * 0.3;
      }
      map.Set(bi, bj, rho);
    }
  }
  return map;
}

class WaterLevelFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaterLevelFuzzTest, MatchesBruteForce) {
  const std::uint64_t seed = GetParam();
  DensityMap map = RandomMap(8, seed);
  Rng rng(seed * 31 + 1);

  // Candidate thresholds: all distinct block densities plus sentinels.
  std::vector<double> candidates = {0.0, 1.0 + 1e-12};
  for (double v : map.values()) candidates.push_back(v);

  for (int round = 0; round < 6; ++round) {
    const std::size_t dense_all = EstimateMemoryBytes(map, 0.0);
    const std::size_t limit = static_cast<std::size_t>(
        rng.NextDouble() * 1.2 * static_cast<double>(dense_all));

    WaterLevelResult result = SolveWaterLevel(map, limit);

    // Brute force: lowest feasible threshold, else global minimum memory.
    bool any_feasible = false;
    double best_feasible = 2.0;
    std::size_t min_memory = std::numeric_limits<std::size_t>::max();
    for (double t : candidates) {
      const std::size_t memory = EstimateMemoryBytes(map, t);
      min_memory = std::min(min_memory, memory);
      if (memory <= limit) {
        any_feasible = true;
        best_feasible = std::min(best_feasible, t);
      }
    }

    EXPECT_EQ(result.feasible, any_feasible) << "limit=" << limit;
    if (any_feasible) {
      // The solver's level must be feasible (up to fp accumulation) and
      // as low as brute force's.
      EXPECT_LE(static_cast<double>(
                    EstimateMemoryBytes(map, result.threshold)),
                static_cast<double>(limit) + 8.0);
      EXPECT_NEAR(result.threshold, best_feasible, 1e-12);
    } else {
      // Best effort: projected memory equals the global minimum (up to fp
      // accumulation order).
      EXPECT_NEAR(
          static_cast<double>(EstimateMemoryBytes(map, result.threshold)),
          static_cast<double>(min_memory), 8.0);
    }
    // Projection matches the direct evaluation up to floating-point
    // accumulation order (the solver sums incremental flips).
    const double direct = static_cast<double>(
        EstimateMemoryBytes(map, result.threshold));
    EXPECT_NEAR(static_cast<double>(result.projected_bytes), direct, 8.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterLevelFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(EstimatorMonotonicityTest, DenserInputsGiveDenserEstimates) {
  DensityMap thin(64, 64, 16), thick(64, 64, 16);
  for (index_t bi = 0; bi < 4; ++bi) {
    for (index_t bj = 0; bj < 4; ++bj) {
      thin.Set(bi, bj, 0.05);
      thick.Set(bi, bj, 0.20);
    }
  }
  DensityMap c_thin = EstimateProductDensity(thin, thin);
  DensityMap c_thick = EstimateProductDensity(thick, thick);
  for (index_t bi = 0; bi < 4; ++bi) {
    for (index_t bj = 0; bj < 4; ++bj) {
      EXPECT_GT(c_thick.At(bi, bj), c_thin.At(bi, bj));
    }
  }
}

TEST(EstimatorMonotonicityTest, EstimateIsAtMostOne) {
  DensityMap full(64, 64, 16);
  for (index_t bi = 0; bi < 4; ++bi) {
    for (index_t bj = 0; bj < 4; ++bj) full.Set(bi, bj, 0.99);
  }
  DensityMap c = EstimateProductDensity(full, full);
  for (index_t bi = 0; bi < 4; ++bi) {
    for (index_t bj = 0; bj < 4; ++bj) {
      EXPECT_LE(c.At(bi, bj), 1.0);
      EXPECT_GE(c.At(bi, bj), 0.99);
    }
  }
}

}  // namespace
}  // namespace atmx
