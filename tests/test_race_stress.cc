// TSan-targeted concurrency stress: hammers the WorkerTeam broadcast
// protocol, the per-team task queues of TeamScheduler, and concurrent
// AtMult tile accumulation with randomized schedules. The assertions are
// deliberately simple (exactly-once counters, numeric equality against a
// reference product) — the point is to generate enough conflicting
// schedules that ThreadSanitizer observes every lock-protocol edge.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"
#include "topology/thread_pool.h"

namespace atmx {
namespace {

using ::atmx::testing::RandomCoo;

TEST(RaceStressTest, ParallelRunReuseChurn) {
  WorkerTeam team(/*team_id=*/0, /*num_threads=*/4);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(team.size()));
  for (int round = 0; round < 400; ++round) {
    team.ParallelRun([&](int thread) {
      hits[static_cast<std::size_t>(thread)].fetch_add(
          1, std::memory_order_relaxed);
    });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 400);
}

TEST(RaceStressTest, ParallelForRandomizedShapes) {
  WorkerTeam team(/*team_id=*/0, /*num_threads=*/3);
  Rng rng(42);
  for (int round = 0; round < 200; ++round) {
    const index_t n = 1 + static_cast<index_t>(rng.NextBounded(500));
    const index_t grain = 1 + static_cast<index_t>(rng.NextBounded(32));
    std::vector<std::atomic<std::uint32_t>> visited(
        static_cast<std::size_t>(n));
    team.ParallelFor(n, grain, [&](index_t lo, index_t hi) {
      EXPECT_LE(hi - lo, grain);
      for (index_t i = lo; i < hi; ++i) {
        visited[static_cast<std::size_t>(i)].fetch_add(
            1, std::memory_order_relaxed);
      }
    });
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(visited[static_cast<std::size_t>(i)].load(), 1u)
          << "index " << i << " in round " << round;
    }
  }
}

TEST(RaceStressTest, WorkerTeamConstructDestroyChurn) {
  // The constructor/destructor handshake (thread spawn, shutdown broadcast,
  // join) must be clean even when a job runs between them.
  for (int round = 0; round < 120; ++round) {
    WorkerTeam team(round % 4, 1 + round % 5);
    std::atomic<int> ran{0};
    team.ParallelRun([&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), team.size());
  }
}

TEST(RaceStressTest, SchedulerRandomizedHomes) {
  Rng rng(7);
  for (int round = 0; round < 60; ++round) {
    const int teams = 1 + static_cast<int>(rng.NextBounded(4));
    const int threads = 1 + static_cast<int>(rng.NextBounded(3));
    const index_t num_tasks =
        static_cast<index_t>(rng.NextBounded(200));
    // Randomized, uneven team assignment — some teams may get nothing.
    std::vector<int> homes(static_cast<std::size_t>(num_tasks));
    for (auto& h : homes) h = static_cast<int>(rng.NextBounded(teams));

    std::vector<std::atomic<int>> runs(static_cast<std::size_t>(num_tasks));
    TeamScheduler scheduler(teams, threads);
    ScheduleOptions options;
    options.work_stealing = false;
    scheduler.RunTasks(
        num_tasks,
        [&](index_t task) { return homes[static_cast<std::size_t>(task)]; },
        [&](WorkerTeam& team, index_t task) {
          EXPECT_EQ(team.team_id(), homes[static_cast<std::size_t>(task)]);
          // Nested intra-task parallelism on the owning team.
          team.ParallelFor(8, 2, [&](index_t, index_t) {});
          runs[static_cast<std::size_t>(task)].fetch_add(1);
        },
        options, nullptr);
    for (index_t t = 0; t < num_tasks; ++t) {
      ASSERT_EQ(runs[static_cast<std::size_t>(t)].load(), 1)
          << "task " << t << " in round " << round;
    }
  }
}

TEST(RaceStressTest, SchedulerStealingRandomizedChurn) {
  // Same exactly-once property under the work-stealing protocol: skewed
  // home assignments force steals, nested ParallelFor keeps the executing
  // team's broadcast path busy while thieves hit the victim deques.
  Rng rng(13);
  for (int round = 0; round < 60; ++round) {
    const int teams = 2 + static_cast<int>(rng.NextBounded(3));
    const index_t num_tasks = static_cast<index_t>(rng.NextBounded(200));
    // Skew toward team 0 so victim queues actually drain cross-team.
    std::vector<int> homes(static_cast<std::size_t>(num_tasks));
    for (auto& h : homes) {
      h = rng.NextBounded(4) == 0 ? static_cast<int>(rng.NextBounded(teams))
                                  : 0;
    }
    std::vector<std::atomic<int>> runs(static_cast<std::size_t>(num_tasks));
    TeamScheduler scheduler(teams, 2);
    ScheduleOptions options;
    options.work_stealing = true;
    options.cost_of = [](index_t task) {
      return static_cast<double>(task % 7);
    };
    ScheduleStats stats;
    scheduler.RunTasks(
        num_tasks,
        [&](index_t task) { return homes[static_cast<std::size_t>(task)]; },
        [&](WorkerTeam& team, index_t task) {
          team.ParallelFor(8, 2, [&](index_t, index_t) {});
          runs[static_cast<std::size_t>(task)].fetch_add(1);
        },
        options, &stats);
    index_t executed_total = 0;
    for (index_t e : stats.executed_per_team) executed_total += e;
    ASSERT_EQ(executed_total, num_tasks) << "round " << round;
    for (index_t t = 0; t < num_tasks; ++t) {
      ASSERT_EQ(runs[static_cast<std::size_t>(t)].load(), 1)
          << "task " << t << " in round " << round;
    }
  }
}

TEST(RaceStressTest, ParallelRunSpinWakeChurn) {
  // Tiny back-to-back jobs land in WorkerLoop's bounded-spin window; two
  // teams churning concurrently also exercise the spin -> condvar fallback
  // when the gap between jobs exceeds the spin budget.
  WorkerTeam team_a(0, 3);
  WorkerTeam team_b(1, 3);
  std::atomic<int> total{0};
  std::thread driver_b([&] {
    for (int round = 0; round < 600; ++round) {
      team_b.ParallelRun([&](int) { total.fetch_add(1); });
    }
  });
  for (int round = 0; round < 600; ++round) {
    team_a.ParallelRun([&](int) { total.fetch_add(1); });
  }
  driver_b.join();
  EXPECT_EQ(total.load(), 600 * (team_a.size() + team_b.size()));
}

TEST(RaceStressTest, SchedulerReuseAcrossBatches) {
  TeamScheduler scheduler(3, 2);
  std::atomic<index_t> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    scheduler.RunTasks(
        17, [&](index_t task) { return static_cast<int>(task % 3); },
        [&](WorkerTeam&, index_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 17 * 50);
}

TEST(RaceStressTest, ConcurrentAtMultTileAccumulation) {
  // Several AtMult invocations run concurrently, each with its own
  // scheduler and block_counts grid; every result must match the serial
  // reference product exactly in structure and value.
  AtmConfig config;
  config.b_atomic = 8;
  config.llc_bytes = 1 << 18;
  config.num_sockets = 2;
  config.cores_per_socket = 2;

  CooMatrix a_coo = GenerateBandedBlocks(72, 6, 0.5, 4, /*seed=*/11);
  CooMatrix b_coo = GenerateDiagonalDenseBlocks(72, 3, 8, 0.9, 150,
                                                /*seed=*/12);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix b = PartitionToAtm(b_coo, config);
  const DenseMatrix expected =
      CsrToDense(SpGemmCsr(CooToCsr(a_coo), CooToCsr(b_coo)));

  const AtMult op(config);
  constexpr int kCallers = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 4; ++round) {
        ATMatrix c = op.Multiply(a, b);
        if (!c.CheckValid() ||
            MaxAbsDiff(expected, CsrToDense(c.ToCsr())) > 1e-9) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RaceStressTest, ConcurrentMixedOperandMultiplies) {
  // Different operand pairs in flight at once, exercising the JIT
  // conversion cache and both dense and sparse result paths concurrently.
  AtmConfig config;
  config.b_atomic = 8;
  config.llc_bytes = 1 << 18;
  config.num_sockets = 2;
  config.cores_per_socket = 2;

  CooMatrix sparse_coo = RandomCoo(64, 64, 400, /*seed=*/21);
  DenseMatrix dense = GenerateFullDense(64, 64, /*seed=*/22);
  ATMatrix sparse_atm = PartitionToAtm(sparse_coo, config);
  ATMatrix dense_atm = PartitionToAtm(DenseToCoo(dense), config);

  const DenseMatrix expected_ss =
      CsrToDense(SpGemmCsr(CooToCsr(sparse_coo), CooToCsr(sparse_coo)));
  const DenseMatrix expected_sd =
      CsrToDense(SpGemmCsr(CooToCsr(sparse_coo), DenseToCsr(dense)));

  const AtMult op(config);
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        const bool second_dense = (t + round) % 2 == 0;
        ATMatrix c = second_dense ? op.Multiply(sparse_atm, dense_atm)
                                  : op.Multiply(sparse_atm, sparse_atm);
        const DenseMatrix& expected =
            second_dense ? expected_sd : expected_ss;
        if (!c.CheckValid() ||
            MaxAbsDiff(expected, CsrToDense(c.ToCsr())) > 1e-9) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace atmx
