#include "storage/serialize.h"

#include <gtest/gtest.h>

#include <fstream>

#include "gen/synthetic.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, CooRoundTrip) {
  CooMatrix m = RandomCoo(33, 47, 200, 1);
  const std::string path = TempPath("m.coo.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  Result<CooMatrix> loaded = LoadCooMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().rows(), 33);
  EXPECT_EQ(loaded.value().nnz(), 200);
  ExpectDenseNear(CooToDense(m), CooToDense(loaded.value()), 0.0);
}

TEST(SerializeTest, CsrRoundTrip) {
  CsrMatrix m = CooToCsr(RandomCoo(20, 30, 150, 2));
  const std::string path = TempPath("m.csr.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  Result<CsrMatrix> loaded = LoadCsrMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().CheckValid());
  ExpectDenseNear(CsrToDense(m), CsrToDense(loaded.value()), 0.0);
}

TEST(SerializeTest, DenseRoundTrip) {
  DenseMatrix m = GenerateFullDense(17, 23, 3);
  const std::string path = TempPath("m.dense.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  Result<DenseMatrix> loaded = LoadDenseMatrix(path);
  ASSERT_TRUE(loaded.ok());
  ExpectDenseNear(m, loaded.value(), 0.0);
}

TEST(SerializeTest, ATMatrixRoundTrip) {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  CooMatrix coo = GenerateDiagonalDenseBlocks(96, 3, 16, 0.9, 300, 4);
  ATMatrix m = PartitionToAtm(coo, config);
  const std::string path = TempPath("m.atm.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  Result<ATMatrix> loaded = LoadATMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ATMatrix& l = loaded.value();
  EXPECT_TRUE(l.CheckValid());
  EXPECT_EQ(l.num_tiles(), m.num_tiles());
  EXPECT_EQ(l.NumDenseTiles(), m.NumDenseTiles());
  EXPECT_EQ(l.b_atomic(), 16);
  ExpectDenseNear(CsrToDense(m.ToCsr()), CsrToDense(l.ToCsr()), 0.0);
  // Home nodes and density map survive.
  for (index_t t = 0; t < m.num_tiles(); ++t) {
    EXPECT_EQ(l.tiles()[t].home_node(), m.tiles()[t].home_node());
  }
  for (index_t bi = 0; bi < m.density_map().grid_rows(); ++bi) {
    for (index_t bj = 0; bj < m.density_map().grid_cols(); ++bj) {
      EXPECT_DOUBLE_EQ(l.density_map().At(bi, bj),
                       m.density_map().At(bi, bj));
    }
  }
}

TEST(SerializeTest, PeekReportsTypes) {
  const std::string coo_path = TempPath("p.coo.bin");
  const std::string csr_path = TempPath("p.csr.bin");
  ASSERT_TRUE(SaveMatrix(RandomCoo(4, 4, 4, 5), coo_path).ok());
  ASSERT_TRUE(SaveMatrix(CooToCsr(RandomCoo(4, 4, 4, 6)), csr_path).ok());
  EXPECT_EQ(PeekMatrixType(coo_path).value(), "coo");
  EXPECT_EQ(PeekMatrixType(csr_path).value(), "csr");
}

TEST(SerializeTest, WrongTypeRejected) {
  const std::string path = TempPath("wrong.bin");
  ASSERT_TRUE(SaveMatrix(RandomCoo(4, 4, 4, 7), path).ok());
  EXPECT_FALSE(LoadCsrMatrix(path).ok());
  EXPECT_FALSE(LoadATMatrix(path).ok());
}

TEST(SerializeTest, MissingFileRejected) {
  EXPECT_FALSE(LoadCooMatrix(TempPath("nonexistent.bin")).ok());
  EXPECT_FALSE(PeekMatrixType(TempPath("nonexistent.bin")).ok());
}

TEST(SerializeTest, CorruptMagicRejected) {
  const std::string path = TempPath("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a matrix file at all, definitely long enough";
  }
  Result<CooMatrix> loaded = LoadCooMatrix(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, TruncatedFileRejected) {
  CsrMatrix m = CooToCsr(RandomCoo(50, 50, 400, 8));
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = in.tellg();
  in.seekg(0);
  std::vector<char> buf(static_cast<std::size_t>(size) / 2);
  in.read(buf.data(), buf.size());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), buf.size());
  }
  EXPECT_FALSE(LoadCsrMatrix(path).ok());
}

}  // namespace
}  // namespace atmx
