#include "validate/validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"
#include "validate/debug_hooks.h"

namespace atmx {
namespace {

using ::atmx::testing::RandomCoo;

CsrMatrix SmallCsr() {
  CooMatrix coo(4, 5);
  coo.Add(0, 1, 1.0);
  coo.Add(0, 3, 2.0);
  coo.Add(2, 0, 3.0);
  coo.Add(2, 4, 4.0);
  coo.Add(3, 2, 5.0);
  return CooToCsr(coo);
}

// Rebuilds a CSR from (possibly corrupted) copies of another's arrays. The
// CsrMatrix constructor only enforces array-size consistency, so structural
// corruptions pass through to the validator under test.
CsrMatrix RebuildCsr(const CsrMatrix& src, std::vector<index_t> row_ptr,
                     std::vector<index_t> col_idx,
                     std::vector<value_t> values) {
  return CsrMatrix(src.rows(), src.cols(), std::move(row_ptr),
                   std::move(col_idx), std::move(values));
}

TEST(ValidateCsrTest, AcceptsWellFormed) {
  EXPECT_TRUE(ValidateCsr(SmallCsr()).ok());
  EXPECT_TRUE(ValidateCsr(CsrMatrix(0, 0)).ok());
  EXPECT_TRUE(ValidateCsr(CsrMatrix(7, 3)).ok());
  EXPECT_TRUE(
      ValidateCsr(CooToCsr(RandomCoo(40, 60, 300, /*seed=*/1))).ok());
}

TEST(ValidateCsrTest, RejectsUnsortedColumns) {
  const CsrMatrix m = SmallCsr();
  auto col_idx = m.col_idx();
  std::swap(col_idx[0], col_idx[1]);  // row 0 becomes {3, 1}
  const Status s =
      ValidateCsr(RebuildCsr(m, m.row_ptr(), std::move(col_idx), m.values()));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

TEST(ValidateCsrTest, RejectsDuplicateColumns) {
  const CsrMatrix m = SmallCsr();
  auto col_idx = m.col_idx();
  col_idx[1] = col_idx[0];  // row 0 becomes {1, 1}
  const Status s =
      ValidateCsr(RebuildCsr(m, m.row_ptr(), std::move(col_idx), m.values()));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

TEST(ValidateCsrTest, RejectsNonMonotoneRowPtr) {
  const CsrMatrix m = SmallCsr();
  auto row_ptr = m.row_ptr();
  row_ptr[2] = row_ptr[1] + 2;
  row_ptr[3] = row_ptr[1];  // interior decrease
  const Status s =
      ValidateCsr(RebuildCsr(m, std::move(row_ptr), m.col_idx(), m.values()));
  EXPECT_FALSE(s.ok()) << s.ToString();
}

TEST(ValidateCsrTest, RejectsOutOfRangeColumn) {
  const CsrMatrix m = SmallCsr();
  auto col_idx = m.col_idx();
  col_idx.back() = m.cols();  // one past the end
  const Status s =
      ValidateCsr(RebuildCsr(m, m.row_ptr(), std::move(col_idx), m.values()));
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange) << s.ToString();
}

TEST(ValidateCsrTest, RejectsNonFiniteValue) {
  const CsrMatrix m = SmallCsr();
  auto values = m.values();
  values[2] = std::nan("");
  const Status s =
      ValidateCsr(RebuildCsr(m, m.row_ptr(), m.col_idx(), std::move(values)));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

TEST(ValidateCooTest, AcceptsWellFormed) {
  EXPECT_TRUE(ValidateCoo(RandomCoo(20, 30, 100, /*seed=*/2)).ok());
  EXPECT_TRUE(ValidateCoo(CooMatrix(0, 0)).ok());
}

TEST(ValidateCooTest, RejectsOutOfBoundsEntry) {
  CooMatrix coo(4, 4);
  coo.Add(1, 1, 1.0);
  coo.entries().push_back({4, 0, 1.0});
  EXPECT_EQ(ValidateCoo(coo).code(), StatusCode::kOutOfRange);
}

TEST(ValidateCooTest, RejectsNonFiniteValue) {
  CooMatrix coo(4, 4);
  coo.Add(1, 1, std::numeric_limits<double>::infinity());
  EXPECT_EQ(ValidateCoo(coo).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateCooTest, DuplicatePolicy) {
  CooMatrix coo(4, 4);
  coo.Add(2, 3, 1.0);
  coo.Add(2, 3, 2.0);
  EXPECT_EQ(ValidateCoo(coo).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(ValidateCoo(coo, /*allow_duplicates=*/true).ok());
  coo.CoalesceDuplicates();
  EXPECT_TRUE(ValidateCoo(coo).ok());
}

TEST(ValidateDenseTest, FiniteValuesOnly) {
  DenseMatrix d(3, 3);
  d.Fill(1.0);
  EXPECT_TRUE(ValidateDense(d).ok());
  d.At(1, 2) = std::nan("");
  EXPECT_EQ(ValidateDense(d).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateDensityMapTest, CellRange) {
  DensityMap map(8, 8, 4);
  map.Set(0, 0, 0.5);
  EXPECT_TRUE(ValidateDensityMap(map).ok());
  map.Set(1, 1, 1.5);
  EXPECT_EQ(ValidateDensityMap(map).code(), StatusCode::kOutOfRange);
  map.Set(1, 1, -0.1);
  EXPECT_EQ(ValidateDensityMap(map).code(), StatusCode::kOutOfRange);
}

// Hand-built 2x2 tiling of an 8x8 matrix with an exactly consistent
// density map (mirrors the fixture in test_at_matrix.cc).
ATMatrix HandTiledMatrix() {
  std::vector<Tile> tiles;
  DenseMatrix ul(4, 4);
  ul.Fill(1.0);
  tiles.push_back(Tile::MakeDense(0, 0, std::move(ul)));
  CooMatrix ur(4, 4);
  ur.Add(0, 3, 2.0);
  tiles.push_back(Tile::MakeSparse(0, 4, CooToCsr(ur)));
  tiles.push_back(Tile::MakeSparse(4, 0, CsrMatrix(4, 4)));
  CooMatrix lr(4, 4);
  for (index_t i = 0; i < 4; ++i) lr.Add(i, i, 3.0);
  tiles.push_back(Tile::MakeSparse(4, 4, CooToCsr(lr)));

  DensityMap map(8, 8, 4);
  map.Set(0, 0, 1.0);
  map.Set(0, 1, 1.0 / 16);
  map.Set(1, 1, 4.0 / 16);
  return ATMatrix(8, 8, 4, std::move(tiles), std::move(map));
}

TEST(ValidateAtMatrixTest, AcceptsHandTiled) {
  EXPECT_TRUE(ValidateAtMatrix(HandTiledMatrix()).ok());
}

TEST(ValidateAtMatrixTest, AcceptsPartitionerOutputWithStrictOptions) {
  AtmConfig config;
  config.b_atomic = 16;
  ATMatrix atm = PartitionToAtm(RandomCoo(100, 80, 900, /*seed=*/3), config);
  AtmValidateOptions options;
  options.quadtree_geometry = true;
  options.config = &config;
  const Status s = ValidateAtMatrix(atm, options);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(ValidateAtMatrixTest, RejectsOverlappingTiles) {
  validate_debug::ScopedDisableValidation no_hooks;
  ATMatrix good = HandTiledMatrix();
  std::vector<Tile> tiles(good.tiles().begin(), good.tiles().end());
  tiles.push_back(tiles[3]);  // duplicate the lower-right tile
  ATMatrix bad(8, 8, 4, std::move(tiles), good.density_map());
  const Status s = ValidateAtMatrix(bad);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("overlap"), std::string::npos) << s.ToString();
}

TEST(ValidateAtMatrixTest, RejectsUncoveredArea) {
  validate_debug::ScopedDisableValidation no_hooks;
  ATMatrix good = HandTiledMatrix();
  std::vector<Tile> tiles(good.tiles().begin(), good.tiles().end());
  tiles.erase(tiles.begin() + 2);  // drop the (empty) lower-left tile
  ATMatrix bad(8, 8, 4, std::move(tiles), good.density_map());
  const Status s = ValidateAtMatrix(bad);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("uncovered"), std::string::npos)
      << s.ToString();
}

TEST(ValidateAtMatrixTest, RejectsTileOutsideMatrix) {
  validate_debug::ScopedDisableValidation no_hooks;
  ATMatrix good = HandTiledMatrix();
  std::vector<Tile> tiles(good.tiles().begin(), good.tiles().end());
  DenseMatrix shifted(4, 4);
  tiles[0] = Tile::MakeDense(6, 0, std::move(shifted));  // spills past row 8
  ATMatrix bad(8, 8, 4, std::move(tiles), good.density_map());
  EXPECT_EQ(ValidateAtMatrix(bad).code(), StatusCode::kOutOfRange);
}

TEST(ValidateAtMatrixTest, RejectsStaleDensityMap) {
  validate_debug::ScopedDisableValidation no_hooks;
  ATMatrix good = HandTiledMatrix();
  DensityMap map = good.density_map();
  map.Set(1, 0, 0.5);  // the lower-left block is actually empty
  ATMatrix bad(8, 8, 4,
               std::vector<Tile>(good.tiles().begin(), good.tiles().end()),
               std::move(map));
  const Status s = ValidateAtMatrix(bad);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("density map cell"), std::string::npos)
      << s.ToString();
}

TEST(ValidateAtMatrixTest, RejectsStaleTileNnz) {
  validate_debug::ScopedDisableValidation no_hooks;
  ATMatrix bad = HandTiledMatrix();
  // Zero a payload element behind the tile's back: tile nnz goes stale.
  bad.mutable_tiles()[0].mutable_dense().At(2, 2) = 0.0;
  const Status s = ValidateAtMatrix(bad);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("nnz"), std::string::npos) << s.ToString();
}

TEST(ValidateAtMatrixTest, RejectsPayloadShapeMismatch) {
  validate_debug::ScopedDisableValidation no_hooks;
  ATMatrix bad = HandTiledMatrix();
  // Swap in a payload of the wrong shape under the same tile extent.
  bad.mutable_tiles()[2].mutable_sparse() = CsrMatrix(2, 4);
  const Status s = ValidateAtMatrix(bad);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("payload shape"), std::string::npos)
      << s.ToString();
}

TEST(ValidateAtMatrixTest, RejectsDensityMapGeometryMismatch) {
  validate_debug::ScopedDisableValidation no_hooks;
  ATMatrix good = HandTiledMatrix();
  ATMatrix bad(8, 8, 4,
               std::vector<Tile>(good.tiles().begin(), good.tiles().end()),
               DensityMap(8, 8, 2));  // wrong block size
  EXPECT_EQ(ValidateAtMatrix(bad).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateAtMatrixTest, RejectsNonPowerOfTwoBlock) {
  validate_debug::ScopedDisableValidation no_hooks;
  std::vector<Tile> tiles;
  DenseMatrix d(6, 6);
  tiles.push_back(Tile::MakeDense(0, 0, std::move(d)));
  ATMatrix bad(6, 6, 6, std::move(tiles), DensityMap(6, 6, 6));
  EXPECT_EQ(ValidateAtMatrix(bad).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateAtMatrixTest, ConfigCatchesWrongStorageKindForDensity) {
  validate_debug::ScopedDisableValidation no_hooks;
  AtmConfig config;
  config.b_atomic = 4;
  // An almost-empty dense tile: legal in general, but inconsistent with
  // rho_read when the config invariants are requested.
  DenseMatrix d(4, 4);
  d.At(0, 0) = 1.0;
  std::vector<Tile> tiles;
  tiles.push_back(Tile::MakeDense(0, 0, std::move(d)));
  DensityMap map(4, 4, 4);
  map.Set(0, 0, 1.0 / 16);
  ATMatrix atm(4, 4, 4, std::move(tiles), std::move(map));
  EXPECT_TRUE(ValidateAtMatrix(atm).ok());

  AtmValidateOptions options;
  options.config = &config;
  const Status s = ValidateAtMatrix(atm, options);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("rho_read"), std::string::npos)
      << s.ToString();
}

TEST(ValidateAtMatrixTest, QuadtreeGeometryCatchesMisalignedTile) {
  validate_debug::ScopedDisableValidation no_hooks;
  // Two 4x8 rectangular slices of an 8x8 matrix: a legal AT MATRIX (this is
  // what RetileColumns can produce), but not quadtree geometry.
  std::vector<Tile> tiles;
  DenseMatrix top(4, 8), bottom(4, 8);
  top.Fill(1.0);
  bottom.Fill(1.0);
  tiles.push_back(Tile::MakeDense(0, 0, std::move(top)));
  tiles.push_back(Tile::MakeDense(4, 0, std::move(bottom)));
  DensityMap map(8, 8, 4);
  for (index_t bi = 0; bi < 2; ++bi) {
    for (index_t bj = 0; bj < 2; ++bj) map.Set(bi, bj, 1.0);
  }
  ATMatrix atm(8, 8, 4, std::move(tiles), std::move(map));
  EXPECT_TRUE(ValidateAtMatrix(atm).ok());

  AtmValidateOptions options;
  options.quadtree_geometry = true;
  EXPECT_FALSE(ValidateAtMatrix(atm, options).ok());
}

TEST(DebugHooksTest, DisableScopeNests) {
  if (!validate_debug::CompiledIn()) {
    EXPECT_FALSE(validate_debug::Enabled());
    return;
  }
  EXPECT_TRUE(validate_debug::Enabled());
  {
    validate_debug::ScopedDisableValidation outer;
    EXPECT_FALSE(validate_debug::Enabled());
    {
      validate_debug::ScopedDisableValidation inner;
      EXPECT_FALSE(validate_debug::Enabled());
    }
    EXPECT_FALSE(validate_debug::Enabled());
  }
  EXPECT_TRUE(validate_debug::Enabled());
}

}  // namespace
}  // namespace atmx
