// Flight recorder dump format, exercised through the DumpNow test hook
// (the fatal-signal path itself is covered end-to-end by
// tools/check_metrics_endpoint.py flight in CI — a unit test can't
// SIGSEGV its own process and keep running).

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/decision_log.h"
#include "obs/json_util.h"
#include "obs/metrics.h"

namespace atmx {
namespace {

using obs::DecisionLog;
using obs::DecisionRecord;
using obs::FlightRecorder;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightRecorderTest, DumpNowWithoutInstallFails) {
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_FALSE(recorder.installed());
  EXPECT_FALSE(recorder.DumpNow("too early").ok());
}

TEST(FlightRecorderTest, InstallRejectsOverlongPathAndDoubleInstall) {
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorder::Options options;
  options.output_dir = std::string(600, 'x');
  EXPECT_FALSE(recorder.Install(options).ok());
  EXPECT_FALSE(recorder.installed());

  options.output_dir = ::testing::TempDir();
  ASSERT_TRUE(recorder.Install(options).ok());
  EXPECT_TRUE(recorder.installed());
  EXPECT_FALSE(recorder.Install(options).ok());  // already installed
  recorder.Uninstall();
  recorder.Uninstall();  // idempotent
  EXPECT_FALSE(recorder.installed());
}

TEST(FlightRecorderTest, DumpNowWritesParseableSchemaCompleteJson) {
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorder::Options options;
  options.output_dir = ::testing::TempDir();
  ASSERT_TRUE(recorder.Install(options).ok());

  // Give the dump something to carry: a metric and a decision record.
  obs::MetricsRegistry::Global()
      .GetCounter("flight_test.events")
      .Add(7);
  DecisionLog::Global().SetEnabled(true);
  DecisionRecord record;
  record.op_id = DecisionLog::Global().NextOpId();
  DecisionLog::Global().Record(record);
  DecisionLog::Global().SetEnabled(false);

  const std::string path = recorder.DumpPath();
  EXPECT_NE(path.find("atmx_flight_"), std::string::npos);
  EXPECT_NE(path.find(std::to_string(::getpid())), std::string::npos);

  ASSERT_TRUE(recorder.DumpNow("unit \"test\"").ok());
  const std::string dump = ReadFile(path);
  ASSERT_FALSE(dump.empty());
  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed(dump, &error)) << error;
  EXPECT_NE(dump.find("\"flight_schema\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"signal\":0"), std::string::npos);
  // The reason round-trips JSON-escaped.
  EXPECT_NE(dump.find("\"reason\":\"unit \\\"test\\\"\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"mem_high_water_bytes\":"), std::string::npos);
  EXPECT_NE(dump.find("\"flight_test.events\""), std::string::npos);
  EXPECT_NE(dump.find("\"decisions\":["), std::string::npos);
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);

  recorder.Uninstall();
  DecisionLog::Global().Clear();
}

TEST(FlightRecorderTest, RefreshIsANoOpBeforeInstall) {
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_FALSE(recorder.installed());
  recorder.Refresh();  // must not crash or allocate a dump path
  EXPECT_FALSE(recorder.DumpNow("still not installed").ok());
}

}  // namespace
}  // namespace atmx
