// Shared helpers for the test suite: random matrix construction and
// structural/numeric comparison of the different representations.

#ifndef ATMX_TESTS_TEST_UTIL_H_
#define ATMX_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "storage/convert.h"
#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"
#include "tile/at_matrix.h"

namespace atmx::testing {

// Uniform random COO with `nnz` distinct entries (nnz must be well below
// rows * cols).
inline CooMatrix RandomCoo(index_t rows, index_t cols, index_t nnz,
                           std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(rows, cols);
  coo.Reserve(nnz);
  index_t added = 0;
  // Dedupe via coalescing afterwards would change nnz; use rejection on a
  // generous draw budget instead.
  std::vector<bool> used;
  const bool small = rows * cols <= (1 << 22);
  if (small) used.assign(static_cast<std::size_t>(rows * cols), false);
  while (added < nnz) {
    const index_t r = static_cast<index_t>(rng.NextBounded(rows));
    const index_t c = static_cast<index_t>(rng.NextBounded(cols));
    if (small) {
      const std::size_t key = static_cast<std::size_t>(r * cols + c);
      if (used[key]) continue;
      used[key] = true;
    }
    coo.Add(r, c, rng.NextDouble() * 2.0 - 1.0);
    ++added;
  }
  if (!small) coo.CoalesceDuplicates();
  return coo;
}

inline void ExpectDenseNear(const DenseMatrix& expected,
                            const DenseMatrix& actual, double tol = 1e-9) {
  ASSERT_EQ(expected.rows(), actual.rows());
  ASSERT_EQ(expected.cols(), actual.cols());
  EXPECT_LE(MaxAbsDiff(expected, actual), tol)
      << "dense matrices differ beyond tolerance";
}

inline void ExpectCsrNearDense(const DenseMatrix& expected,
                               const CsrMatrix& actual, double tol = 1e-9) {
  ExpectDenseNear(expected, CsrToDense(actual), tol);
}

inline void ExpectAtmNearDense(const DenseMatrix& expected,
                               const ATMatrix& actual, double tol = 1e-9) {
  ExpectDenseNear(expected, CsrToDense(actual.ToCsr()), tol);
}

}  // namespace atmx::testing

#endif  // ATMX_TESTS_TEST_UTIL_H_
