// End-to-end correctness of the ATMULT operator across matrix topologies,
// tiling modes, optimization-step configurations (the Fig. 10 ablation
// levels), parallelism settings, and memory limits. Every result is
// validated against the plain Gustavson baseline.

#include "ops/atmult.h"

#include <gtest/gtest.h>

#include "gen/rmat.h"
#include "gen/synthetic.h"
#include "kernels/sparse_kernels.h"
#include "storage/convert.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::ExpectDenseNear;
using atmx::testing::RandomCoo;

AtmConfig TestConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;
  return config;
}

void ExpectProductMatches(const CooMatrix& a_coo, const CooMatrix& b_coo,
                          const AtmConfig& config,
                          AtMultStats* stats = nullptr) {
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix b = PartitionToAtm(b_coo, config);
  AtMult op(config);
  ATMatrix c = op.Multiply(a, b, stats);
  EXPECT_TRUE(c.CheckValid());

  CsrMatrix expected = SpGemmCsr(CooToCsr(a_coo), CooToCsr(b_coo));
  ExpectDenseNear(CsrToDense(expected), CsrToDense(c.ToCsr()), 1e-9);
}

TEST(AtMultTest, UniformSparseSelfMultiply) {
  CooMatrix coo = RandomCoo(96, 96, 900, 1);
  ExpectProductMatches(coo, coo, TestConfig());
}

TEST(AtMultTest, RectangularShapes) {
  CooMatrix a = RandomCoo(70, 40, 500, 2);
  CooMatrix b = RandomCoo(40, 110, 600, 3);
  ExpectProductMatches(a, b, TestConfig());
}

TEST(AtMultTest, HeterogeneousTimesUniform) {
  CooMatrix a = GenerateDiagonalDenseBlocks(128, 4, 24, 0.9, 300, 4);
  CooMatrix b = RandomCoo(128, 128, 1000, 5);
  ExpectProductMatches(a, b, TestConfig());
}

TEST(AtMultTest, SparseTimesFullDense) {
  // The paper's conversion stress test (section II-C3): heterogeneous
  // sparse times a full matrix forces tile conversions.
  CooMatrix a = GenerateDiagonalDenseBlocks(96, 3, 16, 0.9, 200, 6);
  CooMatrix b = DenseToCoo(GenerateFullDense(96, 48, 7));
  AtMultStats stats;
  ExpectProductMatches(a, b, TestConfig(), &stats);
  EXPECT_GT(stats.pair_multiplications, 0);
}

TEST(AtMultTest, FullDenseTimesSparse) {
  CooMatrix a = DenseToCoo(GenerateFullDense(48, 96, 8));
  CooMatrix b = GenerateDiagonalDenseBlocks(96, 3, 16, 0.9, 200, 9);
  ExpectProductMatches(a, b, TestConfig());
}

TEST(AtMultTest, EmptyOperand) {
  CooMatrix a(64, 64);
  CooMatrix b = RandomCoo(64, 64, 200, 10);
  AtmConfig config = TestConfig();
  ATMatrix atm_a = PartitionToAtm(a, config);
  ATMatrix atm_b = PartitionToAtm(b, config);
  AtMult op(config);
  ATMatrix c = op.Multiply(atm_a, atm_b);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.CheckValid());
}

TEST(AtMultTest, SkewedRmatSelfMultiply) {
  RmatParams params;
  params.rows = params.cols = 128;
  params.nnz = 1500;
  params.a = 0.65;
  params.b = 0.12;
  params.c = 0.12;
  params.seed = 11;
  CooMatrix coo = GenerateRmat(params);
  ExpectProductMatches(coo, coo, TestConfig());
}

// --- Fig. 10 optimization-step configurations, all must be correct. ------

struct StepConfig {
  const char* name;
  TilingMode tiling;
  bool estimation;
  bool mixed;
  bool conversion;
};

class AtMultStepTest : public ::testing::TestWithParam<StepConfig> {};

TEST_P(AtMultStepTest, AllOptimizationLevelsProduceTheSameResult) {
  const StepConfig& step = GetParam();
  AtmConfig config = TestConfig();
  config.tiling = step.tiling;
  config.density_estimation = step.estimation;
  config.mixed_tiles = step.mixed;
  config.dynamic_conversion = step.conversion;

  CooMatrix a = GenerateDiagonalDenseBlocks(96, 3, 20, 0.85, 400, 12);
  ExpectProductMatches(a, a, config);
}

INSTANTIATE_TEST_SUITE_P(
    Steps, AtMultStepTest,
    ::testing::Values(
        StepConfig{"step1_baseline", TilingMode::kNone, false, false, false},
        StepConfig{"step2_fixed_sparse", TilingMode::kFixed, false, false,
                   false},
        StepConfig{"step3_fixed_est", TilingMode::kFixed, true, false, false},
        StepConfig{"step4_fixed_mixed", TilingMode::kFixed, true, true,
                   false},
        StepConfig{"step5_adaptive", TilingMode::kAdaptive, true, true,
                   false},
        StepConfig{"step6_atmult", TilingMode::kAdaptive, true, true, true}),
    [](const ::testing::TestParamInfo<StepConfig>& info) {
      return info.param.name;
    });

// --- Parallelism configurations. -----------------------------------------

struct ParallelCase {
  int teams;
  int threads;
};

class AtMultParallelTest : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(AtMultParallelTest, ResultIndependentOfParallelism) {
  AtmConfig config = TestConfig();
  config.num_worker_teams = GetParam().teams;
  config.threads_per_team = GetParam().threads;
  config.num_sockets = GetParam().teams;
  CooMatrix a = GenerateDiagonalDenseBlocks(128, 4, 24, 0.9, 500, 13);
  CooMatrix b = RandomCoo(128, 128, 1200, 14);
  ExpectProductMatches(a, b, config);
}

INSTANTIATE_TEST_SUITE_P(Parallelism, AtMultParallelTest,
                         ::testing::Values(ParallelCase{1, 1},
                                           ParallelCase{1, 4},
                                           ParallelCase{2, 2},
                                           ParallelCase{4, 1},
                                           ParallelCase{3, 3}));

// --- Stats and memory-limit behaviour. -----------------------------------

TEST(AtMultStatsTest, BreakdownIsPopulated) {
  AtmConfig config = TestConfig();
  CooMatrix a = GenerateDiagonalDenseBlocks(128, 4, 24, 0.9, 500, 15);
  ATMatrix atm = PartitionToAtm(a, config);
  AtMult op(config);
  AtMultStats stats;
  ATMatrix c = op.Multiply(atm, atm, &stats);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.multiply_seconds, 0.0);
  EXPECT_GE(stats.estimate_seconds, 0.0);
  EXPECT_GT(stats.pair_multiplications, 0);
  // Every tile-pair multiplication is counted in exactly one kernel
  // variant, so the per-variant counters sum to the pair count.
  EXPECT_EQ(stats.TotalKernelInvocations(), stats.pair_multiplications);
  EXPECT_EQ(stats.dense_result_tiles + stats.sparse_result_tiles,
            c.num_tiles());
  EXPECT_NE(stats.ToString().find("kernels={"), std::string::npos);
  EXPECT_GE(stats.LocalFraction(), 0.0);
  EXPECT_LE(stats.LocalFraction(), 1.0);
  EXPECT_NE(stats.ToString().find("pairs="), std::string::npos);
}

TEST(AtMultStatsTest, MemoryLimitRaisesWriteThreshold) {
  AtmConfig config = TestConfig();
  CooMatrix a = GenerateDiagonalDenseBlocks(128, 4, 32, 0.95, 600, 16);

  AtMult unlimited(config);
  ATMatrix atm = PartitionToAtm(a, config);
  AtMultStats stats_unlimited;
  ATMatrix c1 = unlimited.Multiply(atm, atm, &stats_unlimited);

  config.result_mem_limit_bytes = c1.MemoryBytes() / 2;
  AtMult limited(config);
  AtMultStats stats_limited;
  ATMatrix c2 = limited.Multiply(atm, atm, &stats_limited);

  EXPECT_GE(stats_limited.effective_write_threshold,
            stats_unlimited.effective_write_threshold);
  // Estimated block densities steer the layout; allow a small estimation
  // slack over the unconstrained size.
  EXPECT_LE(static_cast<double>(c2.MemoryBytes()),
            1.05 * static_cast<double>(c1.MemoryBytes()));
  // Same numeric content regardless of representation.
  ExpectDenseNear(CsrToDense(c1.ToCsr()), CsrToDense(c2.ToCsr()), 1e-9);
}

TEST(AtMultStatsTest, ConversionsHappenForSparseTimesFullDense) {
  AtmConfig config = TestConfig();
  // Small LLC: the sparse memory bound of Eq. (2) keeps the moderately
  // dense blocks as *separate* tiles instead of melting them with the
  // empty background (one big tile would dilute the window density).
  config.llc_bytes = 16 * 1024;
  // Tiles just below the read threshold stay sparse at partitioning time;
  // against a full dense B the optimizer should convert (section IV-D).
  CooMatrix a = GenerateDiagonalDenseBlocks(96, 3, 32, 0.22, 100, 17);
  CooMatrix b = DenseToCoo(GenerateFullDense(96, 96, 18));
  ATMatrix atm_a = PartitionToAtm(a, config);
  ATMatrix atm_b = PartitionToAtm(b, config);
  // Tile windows here are narrow enough for the SpMM panel rate, which
  // (intentionally) keeps A sparse under the default cost model; level the
  // panel rate so this test keeps exercising the JIT conversion machinery.
  CostParams params;
  params.c_sdd_panel = params.c_sdd;
  AtMult op(config, CostModel(params));
  AtMultStats stats;
  ATMatrix c = op.Multiply(atm_a, atm_b, &stats);
  EXPECT_GT(stats.sparse_to_dense_conversions, 0);
  CsrMatrix expected = SpGemmCsr(CooToCsr(a), CooToCsr(b));
  ExpectDenseNear(CsrToDense(expected), CsrToDense(c.ToCsr()), 1e-9);
}

TEST(AtMultTest, ChainedMultiplication) {
  // (A*A)*A via AT MATRIX chaining — the result's density map feeds the
  // next estimate.
  AtmConfig config = TestConfig();
  CooMatrix a_coo = RandomCoo(64, 64, 400, 19);
  ATMatrix a = PartitionToAtm(a_coo, config);
  AtMult op(config);
  ATMatrix aa = op.Multiply(a, a);
  ATMatrix aaa = op.Multiply(aa, a);
  CsrMatrix a_csr = CooToCsr(a_coo);
  CsrMatrix expected = SpGemmCsr(SpGemmCsr(a_csr, a_csr), a_csr);
  ExpectDenseNear(CsrToDense(expected), CsrToDense(aaa.ToCsr()), 1e-8);
}

}  // namespace
}  // namespace atmx
