// Observability layer: metrics-registry semantics, histogram bucketing,
// trace recording + JSON well-formedness, the decision-audit ring, and the
// invariant that "kernel" trace spans match the per-variant invocation
// counters of a real ATMULT execution.

#include "obs/obs.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "kernels/kernel_dispatch.h"
#include "obs/json_util.h"
#include "ops/atmult.h"
#include "ops/explain.h"
#include "tests/test_util.h"
#include "tile/partitioner.h"

namespace atmx {
namespace {

using atmx::testing::RandomCoo;
using obs::DecisionLog;
using obs::DecisionRecord;
using obs::MetricsRegistry;
using obs::TraceRecorder;

AtmConfig TestConfig() {
  AtmConfig config;
  config.b_atomic = 16;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;
  return config;
}

// --- Metrics registry. ----------------------------------------------------

TEST(MetricsTest, CounterAccumulates) {
  obs::Counter& c = MetricsRegistry::Global().GetCounter("test.counter.a");
  c.Reset();
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  obs::Gauge& g = MetricsRegistry::Global().GetGauge("test.gauge.a");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.Value(), -2.25);
}

TEST(MetricsTest, RegistryReturnsSameInstance) {
  obs::Counter& a = MetricsRegistry::Global().GetCounter("test.counter.same");
  obs::Counter& b = MetricsRegistry::Global().GetCounter("test.counter.same");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, HistogramBucketing) {
  obs::Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.hist.buckets", {1.0, 10.0, 100.0});
  h.Reset();
  h.Observe(0.5);    // <= 1.0
  h.Observe(1.0);    // <= 1.0 (inclusive upper bound)
  h.Observe(5.0);    // <= 10.0
  h.Observe(1000.0); // overflow
  const std::vector<std::uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 1006.5 / 4.0);
}

TEST(MetricsTest, MacrosUpdateRegistry) {
  MetricsRegistry::Global().GetCounter("test.macro.counter").Reset();
  ATMX_COUNTER_INC("test.macro.counter");
  ATMX_COUNTER_ADD("test.macro.counter", 9);
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("test.macro.counter").Value(),
      10u);
  ATMX_GAUGE_SET("test.macro.gauge", 3.5);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("test.macro.gauge").Value(), 3.5);
  ATMX_HISTOGRAM_OBSERVE_WITH("test.macro.hist", 0.02, 0.01, 0.1, 1.0);
  EXPECT_EQ(
      MetricsRegistry::Global().GetHistogram("test.macro.hist").TotalCount(),
      1u);
}

TEST(MetricsTest, SnapshotIsSortedAndJsonWellFormed) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snap.b").Add(2);
  reg.GetCounter("test.snap.a").Add(1);
  reg.GetGauge("test.snap.g").Set(0.5);
  const std::vector<obs::MetricSample> samples = reg.Snapshot();
  ASSERT_GE(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed(reg.ToJson(), &error)) << error;
  EXPECT_FALSE(reg.ToTable().empty());
}

TEST(MetricsTest, ConcurrentUpdatesDontLose) {
  obs::Counter& c =
      MetricsRegistry::Global().GetCounter("test.counter.threads");
  c.Reset();
  obs::Histogram& h = MetricsRegistry::Global().GetHistogram(
      "test.hist.threads", {0.5});
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kIter = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIter; ++i) {
        c.Increment();
        h.Observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kIter);
  EXPECT_EQ(h.TotalCount(), static_cast<std::uint64_t>(kThreads) * kIter);
  EXPECT_DOUBLE_EQ(h.Sum(), static_cast<double>(kThreads) * kIter);
}

// --- Trace recorder. ------------------------------------------------------

TEST(TraceTest, DisabledRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Disable();
  rec.Clear();
  { ATMX_TRACE_SPAN("test", "disabled_span"); }
  rec.RecordInstant("test", "disabled_instant");
  EXPECT_EQ(rec.EventCount(), 0u);
}

TEST(TraceTest, SpansProduceWellFormedJson) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.Enable();
  {
    ATMX_TRACE_SPAN_ARGS("test", "outer", {"ti", 3}, {"rho", 0.25},
                         {"kind", "dense"});
    ATMX_TRACE_SPAN("test", "inner");
  }
  ATMX_TRACE_INSTANT("test", "marker \"quoted\"\n");
  rec.Disable();
  EXPECT_EQ(rec.EventCount(), 3u);

  const std::string json = rec.ToJson();
  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // The name's quote and newline are escaped inside the JSON string (a
  // raw control character in a string would fail JsonWellFormed above).
  EXPECT_NE(json.find("marker \\\"quoted\\\""), std::string::npos);
  rec.Clear();
}

TEST(TraceTest, SnapshotSortedByStartAndClearable) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.Enable();
  for (int i = 0; i < 5; ++i) {
    ATMX_TRACE_SPAN("test", "ordered");
  }
  rec.Disable();
  const std::vector<obs::TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
  rec.Clear();
  EXPECT_EQ(rec.EventCount(), 0u);
}

TEST(TraceTest, ThreadedRecordingKeepsAllEvents) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.Enable();
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        ATMX_TRACE_SPAN("test", "mt_span");
      }
    });
  }
  for (auto& t : threads) t.join();
  rec.Disable();
  EXPECT_EQ(rec.EventCount(),
            static_cast<std::size_t>(kThreads) * kSpans);
  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed(rec.ToJson(), &error)) << error;
  rec.Clear();
}

// --- JSON validator sanity. -----------------------------------------------

TEST(JsonUtilTest, AcceptsValidRejectsInvalid) {
  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed("{\"a\":[1,2.5,-3e2,true,null,\"s\"]}",
                                  &error))
      << error;
  EXPECT_FALSE(obs::JsonWellFormed("{\"a\":}", &error));
  EXPECT_FALSE(obs::JsonWellFormed("[1,2,]", &error));
  EXPECT_FALSE(obs::JsonWellFormed("{} trailing", &error));
  EXPECT_EQ(obs::EscapeJson("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

// --- Decision log. --------------------------------------------------------

TEST(DecisionLogTest, DisabledByDefaultAndRecords) {
  DecisionLog& log = DecisionLog::Global();
  log.Clear();
  log.SetEnabled(false);
  DecisionRecord rec;
  log.Record(rec);
  EXPECT_TRUE(log.Snapshot().empty());

  log.SetEnabled(true);
  rec.op_id = log.NextOpId();
  rec.ti = 1;
  rec.tj = 2;
  rec.kernel = KernelType::kSSD;
  rec.a_converted = true;
  log.Record(rec);
  log.SetEnabled(false);
  const std::vector<DecisionRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].ti, 1);
  EXPECT_EQ(records[0].tj, 2);
  EXPECT_EQ(records[0].kernel, KernelType::kSSD);
  EXPECT_TRUE(records[0].a_converted);

  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed(log.ToJson(), &error)) << error;
  EXPECT_FALSE(FormatDecisionLog(records).empty());
  log.Clear();
}

TEST(DecisionLogTest, RingWrapKeepsNewestOldestFirst) {
  DecisionLog& log = DecisionLog::Global();
  log.SetCapacity(4);
  log.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    DecisionRecord rec;
    rec.ti = i;
    log.Record(rec);
  }
  log.SetEnabled(false);
  const std::vector<DecisionRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].ti, 6);
  EXPECT_EQ(records[3].ti, 9);
  EXPECT_EQ(log.TotalRecorded(), 10u);
  log.SetCapacity(DecisionLog::kDefaultCapacity);  // also clears
}

// --- End-to-end: trace + audit of a real ATMULT. --------------------------

TEST(ObsIntegrationTest, SpanCountMatchesKernelCounters) {
  AtmConfig config = TestConfig();
  CooMatrix a_coo = GenerateDiagonalDenseBlocks(128, 4, 24, 0.9, 500, 21);
  CooMatrix b_coo = RandomCoo(128, 128, 1200, 22);
  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix b = PartitionToAtm(b_coo, config);

  std::uint64_t before[kNumKernelTypes];
  for (int v = 0; v < kNumKernelTypes; ++v) {
    before[v] = MetricsRegistry::Global()
                    .GetCounter(KernelMetricName(static_cast<KernelType>(v)))
                    .Value();
  }

  TraceRecorder& rec = TraceRecorder::Global();
  rec.Clear();
  rec.Enable();
  DecisionLog::Global().Clear();
  DecisionLog::Global().SetEnabled(true);

  AtMult op(config);
  AtMultStats stats;
  ATMatrix c = op.Multiply(a, b, &stats);

  rec.Disable();
  DecisionLog::Global().SetEnabled(false);
  ASSERT_GT(stats.pair_multiplications, 0);
  EXPECT_GT(c.nnz(), 0);

  // Per-operation stats: variant counts sum to the pair count.
  EXPECT_EQ(stats.TotalKernelInvocations(), stats.pair_multiplications);

  // Registry counters advanced by exactly this operation's counts.
  index_t registry_delta = 0;
  for (int v = 0; v < kNumKernelTypes; ++v) {
    const std::uint64_t after =
        MetricsRegistry::Global()
            .GetCounter(KernelMetricName(static_cast<KernelType>(v)))
            .Value();
    EXPECT_EQ(after - before[v],
              static_cast<std::uint64_t>(stats.kernel_invocations[v]))
        << KernelMetricName(static_cast<KernelType>(v));
    registry_delta += static_cast<index_t>(after - before[v]);
  }
  EXPECT_EQ(registry_delta, stats.pair_multiplications);

  // One "kernel"-category span per tile-pair multiplication.
  index_t kernel_spans = 0;
  std::set<std::string> span_names;
  for (const obs::TraceEvent& e : rec.Snapshot()) {
    if (std::string(e.category) == "kernel") {
      ++kernel_spans;
      span_names.insert(e.name);
    }
  }
  EXPECT_EQ(kernel_spans, stats.pair_multiplications);
  for (const std::string& name : span_names) {
    bool known = false;
    for (int v = 0; v < kNumKernelTypes; ++v) {
      if (name == KernelTypeName(static_cast<KernelType>(v))) known = true;
    }
    EXPECT_TRUE(known) << name;
  }

  // The audit saw every decided pair of this operation.
  index_t audited = 0;
  for (const DecisionRecord& r : DecisionLog::Global().Snapshot()) {
    audited += 1;
    EXPECT_GE(r.rho_a, 0.0);
    EXPECT_GE(r.rho_b, 0.0);
  }
  EXPECT_EQ(audited, stats.pair_multiplications);

  std::string error;
  EXPECT_TRUE(obs::JsonWellFormed(rec.ToJson(), &error)) << error;
  rec.Clear();
  DecisionLog::Global().Clear();
}

// --- Memory tracker. ------------------------------------------------------

TEST(MemTrackerTest, HighWaterIsMonotonicOverAllocFreeCycles) {
  obs::MemTracker& tracker = obs::MemTracker::Global();
  tracker.ResetForTesting();
  EXPECT_EQ(tracker.current_bytes(), 0u);
  EXPECT_EQ(tracker.high_water_bytes(), 0u);

  tracker.RecordAlloc(1000);
  EXPECT_EQ(tracker.current_bytes(), 1000u);
  EXPECT_EQ(tracker.high_water_bytes(), 1000u);

  tracker.RecordAlloc(500);
  EXPECT_EQ(tracker.high_water_bytes(), 1500u);

  // Freeing lowers current but never the high-water mark.
  tracker.RecordFree(1200);
  EXPECT_EQ(tracker.current_bytes(), 300u);
  EXPECT_EQ(tracker.high_water_bytes(), 1500u);

  tracker.RecordAlloc(400);
  EXPECT_EQ(tracker.current_bytes(), 700u);
  EXPECT_EQ(tracker.high_water_bytes(), 1500u);  // below the old peak

  tracker.RecordAlloc(1000);
  EXPECT_EQ(tracker.high_water_bytes(), 1700u);  // new peak
  tracker.ResetForTesting();
}

TEST(MemTrackerTest, FreeClampsAtZero) {
  obs::MemTracker& tracker = obs::MemTracker::Global();
  tracker.ResetForTesting();
  tracker.RecordAlloc(100);
  tracker.RecordFree(1000);  // over-free must not wrap around
  EXPECT_EQ(tracker.current_bytes(), 0u);
  EXPECT_EQ(tracker.high_water_bytes(), 100u);
  tracker.ResetForTesting();
}

TEST(MemTrackerTest, ProcessSampleReadsProcStatus) {
  const obs::MemTracker::ProcessSample sample =
      obs::MemTracker::SampleProcess();
  // /proc/self/status exists on every Linux this repo targets.
  ASSERT_TRUE(sample.valid);
  EXPECT_GT(sample.rss_bytes, 0u);
  EXPECT_GE(sample.rss_peak_bytes, sample.rss_bytes);
  EXPECT_GT(MetricsRegistry::Global().GetGauge("mem.rss_bytes").Value(), 0.0);
}

TEST(ObsIntegrationTest, AtmultPublishesMemoryGauges) {
  obs::MemTracker& tracker = obs::MemTracker::Global();
  tracker.ResetForTesting();

  AtmConfig config = TestConfig();
  CooMatrix a_coo = GenerateDiagonalDenseBlocks(128, 4, 24, 0.9, 500, 31);
  ATMatrix a = PartitionToAtm(a_coo, config);
  AtMult op(config);
  ATMatrix c = op.Multiply(a, a);
  ASSERT_GT(c.nnz(), 0);

  // The operation tracked its result tiles: the high-water mark covers at
  // least the result payload, and the op released its contribution at the
  // end (conversion-cache bytes die with the cache).
  EXPECT_GE(tracker.high_water_bytes(), c.MemoryBytes());
  EXPECT_EQ(tracker.current_bytes(), 0u);

  // The water-level projection and the result-size gauge are published,
  // so predicted-vs-actual is observable after every op.
  const double predicted =
      MetricsRegistry::Global()
          .GetGauge("atmult.waterlevel.predicted_bytes")
          .Value();
  const double result_bytes =
      MetricsRegistry::Global().GetGauge("atmult.result_bytes").Value();
  EXPECT_GT(predicted, 0.0);
  EXPECT_DOUBLE_EQ(result_bytes, static_cast<double>(c.MemoryBytes()));
  EXPECT_GT(MetricsRegistry::Global().GetGauge("mem.high_water_bytes").Value(),
            0.0);
  tracker.ResetForTesting();
}

}  // namespace
}  // namespace atmx
