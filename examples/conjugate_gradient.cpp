// Conjugate gradient solver — solving the symmetric positive-definite
// systems that FEM matrices like the paper's R7-R9 structural workloads
// come from. The hot operation is one SpMV per iteration over the
// AT MATRIX.
//
//   $ ./conjugate_gradient [n] [max_iters]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "ops/spmv.h"
#include "storage/convert.h"
#include "gen/synthetic.h"
#include "tile/partitioner.h"

namespace {

using namespace atmx;

// Symmetric positive-definite band matrix: symmetrized band plus a
// diagonal boost that guarantees strict diagonal dominance.
CooMatrix MakeSpdBand(index_t n, index_t bandwidth, std::uint64_t seed) {
  CooMatrix band = GenerateBanded(n, bandwidth, 0.5, seed);
  CooMatrix sym(n, n);
  std::vector<double> row_abs(n, 0.0);
  for (const CooEntry& e : band.entries()) {
    if (e.row == e.col) continue;
    const double v = 0.5 * e.value;
    sym.Add(e.row, e.col, v);
    sym.Add(e.col, e.row, v);
    row_abs[e.row] += std::fabs(v);
    row_abs[e.col] += std::fabs(v);
  }
  for (index_t i = 0; i < n; ++i) sym.Add(i, i, row_abs[i] + 1.0);
  sym.CoalesceDuplicates();
  return sym;
}

double Dot(const std::vector<value_t>& x, const std::vector<value_t>& y) {
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int max_iters = argc > 2 ? std::atoi(argv[2]) : 200;

  AtmConfig config;
  config.llc_bytes = 1 << 20;

  CooMatrix a_coo = MakeSpdBand(n, 8, 11);
  ATMatrix a = PartitionToAtm(a_coo, config);
  std::printf("SPD band system: n=%lld, nnz=%lld, %lld tiles\n",
              (long long)n, (long long)a.nnz(), (long long)a.num_tiles());

  // Right-hand side with a known solution x* (for the error report).
  Rng rng(3);
  std::vector<value_t> x_star(n);
  for (auto& v : x_star) v = rng.NextDouble() * 2.0 - 1.0;
  std::vector<value_t> b = SpMV(a, x_star);

  // Standard CG.
  std::vector<value_t> x(n, 0.0);
  std::vector<value_t> r = b;
  std::vector<value_t> p = r;
  double rs = Dot(r, r);
  const double tolerance = 1e-18 * rs;

  WallTimer timer;
  int iter = 0;
  for (; iter < max_iters && rs > tolerance; ++iter) {
    std::vector<value_t> ap = SpMV(a, p);
    const double alpha = rs / Dot(p, ap);
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rs_next = Dot(r, r);
    const double beta = rs_next / rs;
    for (index_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs = rs_next;
  }
  const double seconds = timer.ElapsedSeconds();

  double err = 0.0;
  for (index_t i = 0; i < n; ++i) {
    err = std::max(err, std::fabs(x[i] - x_star[i]));
  }
  std::printf("CG: %d iterations in %.1f ms (%.2f ms per SpMV+axpy)\n",
              iter, seconds * 1e3, seconds * 1e3 / std::max(1, iter));
  std::printf("residual ||r||^2 = %.3e, max |x - x*| = %.3e\n", rs, err);
  return err < 1e-5 ? 0 : 1;
}
