// PageRank by power iteration — a matrix-vector workload on the AT MATRIX.
// The paper cites CSR as the spmv format of choice (Vuduc [13]); the
// heterogeneous tile structure additionally runs dense tiles through the
// dense inner kernel. The iteration is
//     r' = d * P^T r + (1 - d)/n
// with P the row-normalized adjacency matrix of a skewed R-MAT graph.
//
//   $ ./pagerank [nodes] [iterations]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/timer.h"
#include "gen/rmat.h"
#include "ops/spmv.h"
#include "ops/transpose.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

int main(int argc, char** argv) {
  using namespace atmx;
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 8192;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 30;
  constexpr double kDamping = 0.85;

  AtmConfig config;
  config.llc_bytes = 1 << 20;

  RmatParams params;
  params.rows = params.cols = n;
  params.nnz = n * 12;
  params.a = 0.62;
  params.b = 0.14;
  params.c = 0.14;
  params.seed = 17;
  CooMatrix adj = GenerateRmat(params);
  std::printf("graph: %lld nodes, %lld edges (R-MAT, skewed)\n",
              (long long)n, (long long)adj.nnz());

  // Row-normalize: P(i, j) = 1/outdeg(i); transpose for r' = P^T r.
  CsrMatrix a = CooToCsr(adj);
  {
    CooMatrix normalized(n, n);
    for (index_t i = 0; i < n; ++i) {
      const double deg = static_cast<double>(a.RowNnz(i));
      for (index_t c : a.RowCols(i)) normalized.Add(i, c, 1.0 / deg);
    }
    a = Transpose(CooToCsr(normalized));
  }
  ATMatrix pt = AtmFromCsr(a, config);
  std::printf("P^T as AT MATRIX: %lld tiles (%lld dense)\n\n",
              (long long)pt.num_tiles(), (long long)pt.NumDenseTiles());

  std::vector<value_t> rank(n, 1.0 / n);
  WallTimer timer;
  double delta = 1.0;
  int iter = 0;
  for (; iter < iterations && delta > 1e-10; ++iter) {
    std::vector<value_t> next = SpMV(pt, rank);
    // Damping + dangling-mass redistribution.
    double dangling = 0.0;
    for (index_t i = 0; i < n; ++i) {
      // Columns of P^T with no entries are dangling nodes; their mass is
      // spread uniformly. Approximate by renormalizing the total.
      dangling += next[i];
    }
    const double teleport = (1.0 - kDamping) / n;
    const double redistribute = kDamping * (1.0 - dangling) / n;
    delta = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double updated = kDamping * next[i] + teleport + redistribute;
      delta += std::fabs(updated - rank[i]);
      rank[i] = updated;
    }
  }
  std::printf("converged after %d iterations (L1 delta %.2e) in %.1f ms\n",
              iter, delta, timer.ElapsedMillis());

  // Top-5 ranked nodes.
  std::vector<index_t> order(n);
  std::iota(order.begin(), order.end(), index_t{0});
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](index_t x, index_t y) { return rank[x] > rank[y]; });
  std::printf("top nodes:");
  for (int i = 0; i < 5; ++i) {
    std::printf("  #%lld (%.5f)", (long long)order[i], rank[order[i]]);
  }
  std::printf("\n");
  // Mass conservation check.
  const double total = std::accumulate(rank.begin(), rank.end(), 0.0);
  std::printf("total rank mass: %.6f (should be ~1)\n", total);
  return 0;
}
