// Quickstart: build an AT MATRIX from raw (row, col, value) triples,
// inspect its adaptive tiling, and multiply it with itself using ATMULT.
//
//   $ ./quickstart
//
// Walks through the complete public API surface in ~80 lines.

#include <cstdio>

#include "gen/synthetic.h"
#include "ops/atmult.h"
#include "storage/coo_matrix.h"
#include "tile/partitioner.h"
#include "viz/render.h"

int main() {
  using namespace atmx;

  // 1. Configure. The library adapts tile geometry to the (simulated)
  //    machine topology: LLC size drives the maximum tile sizes (Eq. 1&2
  //    of the paper) and the atomic block size.
  AtmConfig config;
  config.llc_bytes = 1 << 20;  // pretend a 1 MiB last-level cache
  config.num_sockets = 2;     // two NUMA nodes -> two worker teams
  config.cores_per_socket = 2;
  std::printf("config: %s\n\n", config.ToString().c_str());

  // 2. Stage a matrix as COO triples. Here: a 2048x2048 matrix with two
  //    dense blocks embedded in a hypersparse background — the kind of
  //    heterogeneous topology real-world matrices exhibit.
  CooMatrix staged = GenerateDiagonalDenseBlocks(
      /*n=*/2048, /*num_blocks=*/2, /*block_size=*/256,
      /*block_density=*/0.9, /*background_nnz=*/8000, /*seed=*/42);
  std::printf("staged matrix: %lld x %lld, %lld non-zeros (%.3f%%)\n",
              (long long)staged.rows(), (long long)staged.cols(),
              (long long)staged.nnz(), staged.Density() * 100);

  // 3. Partition into an AT MATRIX (Z-order + recursive quadtree).
  PartitionStats pstats;
  ATMatrix a = PartitionToAtm(staged, config, &pstats);
  std::printf("partitioned into %lld tiles (%lld dense, %lld sparse) "
              "in %.1f ms\n",
              (long long)a.num_tiles(), (long long)a.NumDenseTiles(),
              (long long)a.NumSparseTiles(),
              pstats.TotalSeconds() * 1e3);
  std::printf("memory: %zu bytes (plain CSR would be %zu)\n\n",
              a.MemoryBytes(), a.ToCsr().MemoryBytes());

  std::printf("tile layout ('#' dense, grayscale ramp sparse):\n%s\n",
              RenderTileLayoutAscii(a, 32).c_str());

  // 4. Multiply: C = A * A. ATMULT estimates the result density, picks
  //    per-tile kernels, and converts tiles just-in-time when profitable.
  AtMult multiply(config);
  AtMultStats mstats;
  ATMatrix c = multiply.Multiply(a, a, &mstats);
  std::printf("C = A*A: %lld non-zeros, %lld result tiles (%lld dense)\n",
              (long long)c.nnz(), (long long)c.num_tiles(),
              (long long)c.NumDenseTiles());
  std::printf("stats: %s\n", mstats.ToString().c_str());

  // 5. Interoperate: exports to plain CSR / COO for downstream code.
  CsrMatrix c_csr = c.ToCsr();
  std::printf("\nC as CSR: %lld rows, %lld nnz, %zu bytes\n",
              (long long)c_csr.rows(), (long long)c_csr.nnz(),
              c_csr.MemoryBytes());
  return 0;
}
