// Multi-source breadth-first search in the language of linear algebra
// (paper, section I / Kepner & Gilbert): the frontier of S simultaneous
// BFS traversals is an S x n sparse matrix F; one expansion step is the
// sparse product F * A over the graph's adjacency matrix. The skewed
// R-MAT graph gives the frontier products exactly the heterogeneous
// density ATMULT optimizes for.
//
//   $ ./graph_bfs [nodes] [sources]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gen/rmat.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

int main(int argc, char** argv) {
  using namespace atmx;
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 4096;
  const index_t sources = argc > 2 ? std::atoll(argv[2]) : 16;

  AtmConfig config;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;

  RmatParams params;
  params.rows = params.cols = n;
  params.nnz = n * 8;  // average degree 8
  params.a = 0.57;
  params.b = 0.19;
  params.c = 0.19;
  params.seed = 3;
  CooMatrix adj_coo = GenerateRmat(params);
  std::printf("R-MAT graph: %lld nodes, %lld edges\n", (long long)n,
              (long long)adj_coo.nnz());

  ATMatrix adjacency = PartitionToAtm(adj_coo, config);
  std::printf("adjacency AT MATRIX: %lld tiles (%lld dense)\n",
              (long long)adjacency.num_tiles(),
              (long long)adjacency.NumDenseTiles());

  // Initial frontier: `sources` rows, one seed node each.
  CooMatrix frontier_coo(sources, n);
  for (index_t s = 0; s < sources; ++s) {
    frontier_coo.Add(s, (s * 2654435761u) % n, 1.0);
  }
  ATMatrix frontier = PartitionToAtm(frontier_coo, config);

  // visited[s*n + v]: already-discovered nodes per traversal.
  std::vector<bool> visited(static_cast<std::size_t>(sources) * n, false);
  for (const CooEntry& e : frontier_coo.entries()) {
    visited[e.row * n + e.col] = true;
  }

  AtMult multiply(config);
  std::printf("\nlevel  frontier nnz  newly discovered  atmult[ms]\n");
  index_t total_discovered = sources;
  for (int level = 1; level <= 12; ++level) {
    AtMultStats stats;
    ATMatrix expanded = multiply.Multiply(frontier, adjacency, &stats);

    // Mask out already-visited nodes and binarize the next frontier.
    CooMatrix next(sources, n);
    CooMatrix reached = expanded.ToCoo();
    for (const CooEntry& e : reached.entries()) {
      if (e.value != 0.0 && !visited[e.row * n + e.col]) {
        visited[e.row * n + e.col] = true;
        next.Add(e.row, e.col, 1.0);
      }
    }
    const index_t newly = next.nnz();
    total_discovered += newly;
    std::printf("%5d  %12lld  %16lld  %10.2f\n", level,
                (long long)reached.nnz(), (long long)newly,
                stats.total_seconds * 1e3);
    if (newly == 0) break;
    frontier = PartitionToAtm(next, config);
  }
  std::printf("\ntotal (source, node) discoveries: %lld of %lld possible\n",
              (long long)total_discovered, (long long)(sources * n));
  return 0;
}
