// Gene-expression factorization loop (paper, section I): non-negative
// matrix factorization V ~ W*H repeatedly multiplies the large sparse
// gene-expression matrix V with dense factor matrices — the core products
// are W^T*V and V*H^T. This example runs multiplicative NMF updates with
// the heavy sparse x dense products executed through ATMULT.
//
//   $ ./gene_clustering [rank] [iterations]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "gen/workloads.h"
#include "ops/atmult.h"
#include "ops/reference_mult.h"
#include "ops/transpose.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace {

using namespace atmx;

DenseMatrix RandomFactor(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      m.At(i, j) = rng.NextDouble() + 0.1;  // strictly positive
    }
  }
  return m;
}

// Full Frobenius objective ||V - W*H||_F, computed without materializing
// W*H: ||V||^2 - 2<V, WH> + tr(H^T (W^T W) H). Multiplicative NMF updates
// are guaranteed not to increase this quantity.
double FrobeniusFit(const CsrMatrix& v, const DenseMatrix& w,
                    const DenseMatrix& h) {
  const index_t rank = w.cols();
  double v_sq = 0.0;
  double cross = 0.0;
  for (index_t i = 0; i < v.rows(); ++i) {
    auto cols = v.RowCols(i);
    auto vals = v.RowValues(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      v_sq += vals[p] * vals[p];
      double wh = 0.0;
      for (index_t r = 0; r < rank; ++r) {
        wh += w.At(i, r) * h.At(r, cols[p]);
      }
      cross += vals[p] * wh;
    }
  }
  DenseMatrix wtw = ReferenceMultiply(Transpose(w), w);
  // tr(H^T WtW H) = sum_{r,s} WtW(r,s) * <H_r, H_s>.
  DenseMatrix hht = ReferenceMultiply(h, Transpose(h));
  double wh_sq = 0.0;
  for (index_t r = 0; r < rank; ++r) {
    for (index_t q = 0; q < rank; ++q) {
      wh_sq += wtw.At(r, q) * hht.At(r, q);
    }
  }
  return std::sqrt(std::max(0.0, v_sq - 2.0 * cross + wh_sq));
}

}  // namespace

int main(int argc, char** argv) {
  const index_t rank = argc > 1 ? std::atoll(argv[1]) : 8;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 3;

  AtmConfig config;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;

  // The human_gene surrogate (R2): scale-free co-expression topology.
  CooMatrix v_coo = MakeWorkloadMatrix("R2", 0.02);
  const index_t m = v_coo.rows();
  const index_t n = v_coo.cols();
  // NMF needs non-negative data; take absolute values.
  for (CooEntry& e : v_coo.entries()) e.value = std::fabs(e.value);
  CsrMatrix v_csr = CooToCsr(v_coo);
  std::printf("V: %lld x %lld gene-expression surrogate, %lld non-zeros\n",
              (long long)m, (long long)n, (long long)v_coo.nnz());

  ATMatrix v = PartitionToAtm(v_coo, config);
  ATMatrix vt = AtmFromCsr(Transpose(v_csr), config);
  AtMult multiply(config);

  DenseMatrix w = RandomFactor(m, rank, 1);
  DenseMatrix h = RandomFactor(rank, n, 2);
  std::printf("rank-%lld NMF, %d multiplicative updates\n\n",
              (long long)rank, iterations);
  std::printf("initial ||V - WH||_F: %.2f\n", FrobeniusFit(v_csr, w, h));

  for (int iter = 0; iter < iterations; ++iter) {
    // H <- H .* (W^T V) ./ (W^T W H). The sparse-heavy product W^T*V runs
    // as (V^T * W)^T through ATMULT; the small rank x rank products stay
    // dense.
    AtMultStats stats;
    ATMatrix w_atm = AtmFromDense(w, config);
    ATMatrix vtw = multiply.Multiply(vt, w_atm, &stats);  // n x rank
    DenseMatrix wtv = Transpose(CsrToDense(vtw.ToCsr()));  // rank x n
    DenseMatrix wtw = ReferenceMultiply(Transpose(w), w);  // rank x rank
    DenseMatrix wtwh = ReferenceMultiply(wtw, h);
    for (index_t r = 0; r < rank; ++r) {
      for (index_t j = 0; j < n; ++j) {
        h.At(r, j) *= wtv.At(r, j) / (wtwh.At(r, j) + 1e-9);
      }
    }

    // W <- W .* (V H^T) ./ (W H H^T).
    ATMatrix ht_atm = AtmFromDense(Transpose(h), config);
    AtMultStats stats2;
    ATMatrix vht = multiply.Multiply(v, ht_atm, &stats2);  // m x rank
    DenseMatrix vht_dense = CsrToDense(vht.ToCsr());
    DenseMatrix hht = ReferenceMultiply(h, Transpose(h));
    DenseMatrix whht = ReferenceMultiply(w, hht);
    for (index_t i = 0; i < m; ++i) {
      for (index_t r = 0; r < rank; ++r) {
        w.At(i, r) *= vht_dense.At(i, r) / (whht.At(i, r) + 1e-9);
      }
    }

    std::printf("iter %d: ||V - WH||_F %.2f  (V*H^T via ATMULT: %.1f ms, "
                "%lld tile pairs)\n",
                iter + 1, FrobeniusFit(v_csr, w, h),
                stats2.total_seconds * 1e3,
                (long long)stats2.pair_multiplications);
  }

  // Cluster assignment: argmax factor per gene (demo output).
  std::vector<index_t> cluster_size(rank, 0);
  for (index_t i = 0; i < m; ++i) {
    index_t best = 0;
    for (index_t r = 1; r < rank; ++r) {
      if (w.At(i, r) > w.At(i, best)) best = r;
    }
    cluster_size[best]++;
  }
  std::printf("\ncluster sizes:");
  for (index_t r = 0; r < rank; ++r) {
    std::printf(" %lld", (long long)cluster_size[r]);
  }
  std::printf("\n");
  return 0;
}
