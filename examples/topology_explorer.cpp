// Topology explorer: partitions any Table I workload (or a MatrixMarket
// file) at several granularities and renders the resulting AT MATRIX
// layouts and density maps — an interactive version of the paper's Fig. 2.
//
//   $ ./topology_explorer [workload-id|file.mtx] [scale]
//   $ ./topology_explorer R3 0.05
//   $ ./topology_explorer my_matrix.mtx

#include <cstdio>
#include <cstdlib>
#include <string>

#include "estimate/density_estimator.h"
#include "gen/workloads.h"
#include "storage/matrix_market.h"
#include "tile/partitioner.h"
#include "viz/render.h"

int main(int argc, char** argv) {
  using namespace atmx;
  const std::string source = argc > 1 ? argv[1] : "R3";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.03;

  CooMatrix coo;
  if (source.size() > 4 && source.substr(source.size() - 4) == ".mtx") {
    Result<CooMatrix> read = ReadMatrixMarket(source);
    if (!read.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", source.c_str(),
                   read.status().ToString().c_str());
      return 1;
    }
    coo = std::move(read).value();
  } else {
    coo = MakeWorkloadMatrix(source, scale);
  }
  std::printf("matrix '%s': %lld x %lld, %lld non-zeros (%.4f%%)\n\n",
              source.c_str(), (long long)coo.rows(), (long long)coo.cols(),
              (long long)coo.nnz(), coo.Density() * 100);

  AtmConfig config;
  config.llc_bytes = 1 << 20;

  const index_t base_block = config.AtomicBlockSize();
  for (index_t b : {base_block * 4, base_block, base_block / 4}) {
    if (b < 16 || b > std::max(coo.rows(), coo.cols())) continue;
    AtmConfig c = config;
    c.b_atomic = b;
    PartitionStats stats;
    ATMatrix atm = PartitionToAtm(coo, c, &stats);
    std::printf("--- b_atomic = %lld: %lld tiles (%lld dense / %lld "
                "sparse), partition %.1f ms, memory %zu bytes ---\n",
                (long long)b, (long long)atm.num_tiles(),
                (long long)atm.NumDenseTiles(),
                (long long)atm.NumSparseTiles(),
                stats.TotalSeconds() * 1e3, atm.MemoryBytes());
    std::printf("%s\n", RenderTileLayoutAscii(atm, 40).c_str());
  }

  // Density map + estimated self-product.
  AtmConfig c = config;
  ATMatrix atm = PartitionToAtm(coo, c);
  std::printf("--- density map (per atomic block) ---\n%s\n",
              RenderDensityMapAscii(atm.density_map(), 40).c_str());
  if (coo.rows() == coo.cols()) {
    DensityMap est =
        EstimateProductDensity(atm.density_map(), atm.density_map());
    std::printf("--- estimated density of A*A ---\n%s\n",
                RenderDensityMapAscii(est, 40).c_str());
    std::printf("estimated nnz(A*A) = %.0f\n", est.ExpectedNnz());
  }

  const std::string pgm = "topology_" + source + ".pgm";
  if (WriteTileLayoutPgm(atm, pgm).ok()) {
    std::printf("wrote %s (grayscale tile layout, dense tiles hatched)\n",
                pgm.c_str());
  }
  return 0;
}
