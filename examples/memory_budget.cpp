// Memory-budgeted multiplication (paper section III-E): in a resource-
// managed system (a DBMS with SLAs), the result of a multiplication must
// fit a memory budget. ATMULT's water-level method raises the write
// density threshold until the *estimated* result size fits, trading speed
// for space. This example sweeps the budget and shows the trade-off.
//
//   $ ./memory_budget

#include <cstdio>

#include "common/timer.h"
#include "common/table_printer.h"
#include "gen/synthetic.h"
#include "ops/atmult.h"
#include "tile/partitioner.h"

int main() {
  using namespace atmx;
  AtmConfig config;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;

  // A matrix whose self-product has a mid-density halo: the interesting
  // regime for the water-level method (blocks that are faster dense but
  // smaller sparse).
  CooMatrix coo = GenerateDiagonalDenseBlocks(
      /*n=*/1536, /*num_blocks=*/4, /*block_size=*/160,
      /*block_density=*/0.95, /*background_nnz=*/12000, /*seed=*/5);
  ATMatrix a = PartitionToAtm(coo, config);
  std::printf("A: %lld x %lld, %lld nnz, %lld tiles (%lld dense)\n\n",
              (long long)a.rows(), (long long)a.cols(), (long long)a.nnz(),
              (long long)a.num_tiles(), (long long)a.NumDenseTiles());

  // Unconstrained reference run.
  AtMult unlimited(config);
  AtMultStats ref_stats;
  WallTimer timer;
  ATMatrix c_ref = unlimited.Multiply(a, a, &ref_stats);
  const double ref_seconds = timer.ElapsedSeconds();
  const std::size_t ref_bytes = c_ref.MemoryBytes();
  std::printf("unconstrained: %.1f ms, result %s (rho_W = %.4f)\n\n",
              ref_seconds * 1e3, TablePrinter::FmtBytes(ref_bytes).c_str(),
              ref_stats.effective_write_threshold);

  TablePrinter table({"budget", "rho_W chosen", "result size", "time[ms]",
                      "dense tiles", "within budget"});
  for (double fraction : {1.0, 0.8, 0.6, 0.45, 0.3}) {
    AtmConfig limited_config = config;
    limited_config.result_mem_limit_bytes =
        static_cast<std::size_t>(fraction * static_cast<double>(ref_bytes));
    AtMult limited(limited_config);
    AtMultStats stats;
    timer.Restart();
    ATMatrix c = limited.Multiply(a, a, &stats);
    const double seconds = timer.ElapsedSeconds();
    table.AddRow(
        {TablePrinter::FmtBytes(limited_config.result_mem_limit_bytes),
         TablePrinter::Fmt(stats.effective_write_threshold, 4),
         TablePrinter::FmtBytes(c.MemoryBytes()),
         TablePrinter::Fmt(seconds * 1e3, 1),
         std::to_string(stats.dense_result_tiles),
         c.MemoryBytes() <= limited_config.result_mem_limit_bytes
             ? "yes"
             : "best effort"});
  }
  table.Print();
  std::printf(
      "\nTighter budgets raise the write threshold, flip result tiles to "
      "sparse, and may cost some multiplication speed — the paper's "
      "'adaption to runtime-available resources' (section III-C/E).\n");
  return 0;
}
