// Text-mining similarity query (paper, section I): a term-document matrix
// A holds the frequency of term j in document i; the cosine similarity of
// all document pairs is D = A * A^T. Term frequencies follow a Zipf
// distribution, so A has a dense "stop-word" column region and a
// hypersparse tail — exactly the heterogeneous topology AT MATRIX targets.
//
//   $ ./text_mining [num_docs] [vocab_size]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "ops/atmult.h"
#include "ops/transpose.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace {

using namespace atmx;

// Synthesizes a document-term frequency matrix: per document, draw terms
// from a Zipf(1.1) vocabulary distribution.
CooMatrix MakeTermDocumentMatrix(index_t docs, index_t vocab,
                                 std::uint64_t seed) {
  Rng rng(seed);
  // Zipf CDF over the vocabulary.
  std::vector<double> cdf(vocab);
  double total = 0.0;
  for (index_t t = 0; t < vocab; ++t) {
    total += std::pow(static_cast<double>(t + 1), -1.1);
    cdf[t] = total;
  }
  CooMatrix a(docs, vocab);
  for (index_t d = 0; d < docs; ++d) {
    const index_t len = 40 + rng.NextBounded(80);  // document length
    for (index_t w = 0; w < len; ++w) {
      const double u = rng.NextDouble() * total;
      const index_t term = static_cast<index_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      a.Add(d, term, 1.0);
    }
  }
  a.CoalesceDuplicates();  // sum repeated (doc, term) counts
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t docs = argc > 1 ? std::atoll(argv[1]) : 2000;
  const index_t vocab = argc > 2 ? std::atoll(argv[2]) : 5000;

  AtmConfig config;
  config.llc_bytes = 1 << 20;
  config.num_sockets = 2;
  config.cores_per_socket = 2;

  CooMatrix a_coo = MakeTermDocumentMatrix(docs, vocab, 7);
  std::printf("term-document matrix: %lld docs x %lld terms, %lld entries "
              "(%.3f%% dense)\n",
              (long long)docs, (long long)vocab, (long long)a_coo.nnz(),
              a_coo.Density() * 100);

  // Normalize rows to unit length so A*A^T yields cosine similarities.
  {
    CsrMatrix tmp = CooToCsr(a_coo);
    CooMatrix normalized(docs, vocab);
    for (index_t i = 0; i < docs; ++i) {
      double norm = 0.0;
      for (value_t v : tmp.RowValues(i)) norm += v * v;
      norm = std::sqrt(std::max(norm, 1e-12));
      auto cols = tmp.RowCols(i);
      auto vals = tmp.RowValues(i);
      for (std::size_t p = 0; p < cols.size(); ++p) {
        normalized.Add(i, cols[p], vals[p] / norm);
      }
    }
    a_coo = std::move(normalized);
  }

  ATMatrix a = PartitionToAtm(a_coo, config);
  ATMatrix at = AtmFromCsr(Transpose(CooToCsr(a_coo)), config);
  std::printf("A: %lld tiles (%lld dense)  A^T: %lld tiles\n",
              (long long)a.num_tiles(), (long long)a.NumDenseTiles(),
              (long long)at.num_tiles());

  AtMult multiply(config);
  AtMultStats stats;
  ATMatrix d = multiply.Multiply(a, at, &stats);
  std::printf("similarity matrix D = A*A^T: %lld x %lld, %lld non-zeros, "
              "computed in %.1f ms (optimize %.2f%%, estimate %.2f%%)\n",
              (long long)d.rows(), (long long)d.cols(), (long long)d.nnz(),
              stats.total_seconds * 1e3, stats.OptimizeFraction() * 100,
              stats.EstimateFraction() * 100);

  // Report the most similar distinct pair among the first 200 documents.
  double best = -1.0;
  index_t bi = 0, bj = 0;
  const index_t probe = std::min<index_t>(docs, 200);
  for (index_t i = 0; i < probe; ++i) {
    for (index_t j = i + 1; j < probe; ++j) {
      const double s = d.At(i, j);
      if (s > best) {
        best = s;
        bi = i;
        bj = j;
      }
    }
  }
  std::printf("most similar pair among first %lld docs: (%lld, %lld) with "
              "cosine %.4f\n",
              (long long)probe, (long long)bi, (long long)bj, best);
  return 0;
}
