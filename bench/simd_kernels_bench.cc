// Micro-benchmark of the level-dispatched SIMD kernels through their
// public entry points (DddGemm, DdsAccumulateRow, SpMV). Run once with
// ATMX_SIMD=scalar to produce the reference-baseline report, then
// dispatched (auto) to measure the register-blocked / AVX2 win:
//
//   ATMX_SIMD=scalar ./simd_kernels_bench --bench-out=base.json
//   ./simd_kernels_bench --bench-out=simd.json
//   tools/compare_bench.py base.json simd.json
//
// bench/baselines/BENCH_simd_kernels.json is the committed scalar
// baseline, so CI's dispatched run gates "SIMD still beats scalar".

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "kernels/dense_kernels.h"
#include "kernels/simd/simd_dispatch.h"
#include "kernels/sparse_accumulator.h"
#include "ops/spmv.h"
#include "storage/convert.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx::bench {
namespace {

DenseMatrix RandomDense(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      m.At(i, j) = rng.NextDouble() - 0.5;
    }
  }
  return m;
}

// Uniform CSR with exactly row_nnz entries per row — long enough rows that
// the AVX2 gather path engages on every one of them.
CsrMatrix UniformCsr(index_t n, index_t row_nnz, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n, n);
  coo.Reserve(static_cast<std::size_t>(n) * row_nnz);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = 0; k < row_nnz; ++k) {
      coo.Add(i, static_cast<index_t>(rng.NextBounded(n)),
              rng.NextDouble() - 0.5);
    }
  }
  coo.CoalesceDuplicates();
  return CooToCsr(coo);
}

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  BenchReporter::Global().Configure("simd_kernels", env);
  std::printf("=== SIMD micro-kernels: dispatched vs scalar baseline ===\n");
  std::printf("%s\n", env.Describe().c_str());
  std::printf("simd level: %s (compiled avx2: %d, cpu avx2: %d)\n\n",
              simd::LevelName(simd::ActiveLevel()),
              simd::Avx2Compiled() ? 1 : 0, simd::CpuSupportsAvx2() ? 1 : 0);

  TablePrinter table({"Case", "ms", "GFLOP/s"});

  // Dense GEMM: the tentpole register-blocked kernel.
  for (index_t n : {index_t{192}, index_t{384}}) {
    DenseMatrix a = RandomDense(n, n, 1);
    DenseMatrix b = RandomDense(n, n, 2);
    DenseMatrix c(n, n);
    const std::string name = "ddd_gemm.n" + std::to_string(n);
    const double seconds =
        BenchReporter::Global().MeasureCase(name, [&] {
          c.Fill(0.0);
          DddGemm(a.View(), b.View(), c.MutView(), 0, n);
        });
    const double flops = 2.0 * n * n * n;
    table.AddRow({name, TablePrinter::Fmt(seconds * 1e3, 3),
                  TablePrinter::Fmt(flops / seconds * 1e-9, 2)});
  }

  // SPA dense-row scatter (DdsAccumulateRow: per-k axpy into the SPA).
  {
    const index_t k = 64, width = 4096;
    DenseMatrix a = RandomDense(1, k, 3);
    DenseMatrix b = RandomDense(k, width, 4);
    SparseAccumulator spa(width);
    const double seconds =
        BenchReporter::Global().MeasureCase("spa_scatter.w4096", [&] {
          DdsAccumulateRow(a.View(), b.View(), 0, &spa);
          spa.Clear();
        });
    const double flops = 2.0 * k * width;
    table.AddRow({"spa_scatter.w4096", TablePrinter::Fmt(seconds * 1e3, 3),
                  TablePrinter::Fmt(flops / seconds * 1e-9, 2)});
  }

  // CSR SpMV with gather-friendly rows (64 nnz/row average).
  {
    const index_t n = 8192, row_nnz = 64;
    CsrMatrix csr = UniformCsr(n, row_nnz, 5);
    Rng rng(6);
    std::vector<value_t> x(n);
    for (auto& v : x) v = rng.NextDouble() - 0.5;
    const double seconds =
        BenchReporter::Global().MeasureCase("spmv_csr.gather64", [&] {
          std::vector<value_t> y = SpMV(csr, x);
          (void)y;
        });
    const double flops = 2.0 * static_cast<double>(csr.nnz());
    table.AddRow({"spmv_csr.gather64", TablePrinter::Fmt(seconds * 1e3, 3),
                  TablePrinter::Fmt(flops / seconds * 1e-9, 2)});
  }

  table.Print();
  std::printf(
      "\nShape check: ddd_gemm improves by >= 1.5x over the scalar "
      "baseline when dispatch selects a blocked kernel; spa_scatter and "
      "spmv track memory bandwidth more than ALU width, so their wins are "
      "smaller but must never regress.\n");
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("simd_kernels", argc, argv);
  atmx::bench::Run();
  return 0;
}
