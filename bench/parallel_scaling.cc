// Parallelization and NUMA placement (section III-F): sweeps the
// (worker teams) x (threads per team) grid and reports wall time and the
// NUMA locality fraction from the round-robin tile-row placement. On a
// single-socket host the time column mainly shows scheduling overhead
// while the locality column shows exactly the placement quality a
// multi-socket machine would see (see DESIGN.md, substitutions).

#include <cstdio>

#include "bench/bench_common.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Parallel resource distribution and NUMA locality ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  CooMatrix coo = MakeWorkloadMatrix("R3", env.scale);

  TablePrinter table({"teams x threads", "atmult[s]", "local fraction",
                      "remote read MB"});
  for (const auto& [teams, threads] :
       std::vector<std::pair<int, int>>{
           {1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {4, 1}, {4, 2}}) {
    AtmConfig config = env.config;
    config.num_sockets = teams;
    config.num_worker_teams = teams;
    config.threads_per_team = threads;

    // Placement happens at partitioning time (tile-rows round-robin over
    // the configured sockets), so re-partition per topology.
    ATMatrix atm = PartitionToAtm(coo, config);
    AtMult op(config, env.cost_model);
    AtMultStats stats;
    const double seconds =
        MeasureSeconds([&] { op.Multiply(atm, atm, &stats); });
    table.AddRow(
        {std::to_string(teams) + " x " + std::to_string(threads),
         TablePrinter::Fmt(seconds, 4),
         TablePrinter::Fmt(stats.LocalFraction(), 3),
         TablePrinter::Fmt(
             static_cast<double>(stats.remote_read_bytes) / (1 << 20), 2)});
  }
  table.Print();
  std::printf(
      "\nShape check: with 1 team everything is local; with multiple "
      "teams, A-tile reads stay team-local by construction (tasks follow "
      "their tile-row home) while B-tile reads split across nodes — the "
      "remote fraction the paper's round-robin placement accepts.\n");
}

}  // namespace
}  // namespace atmx::bench

int main() {
  atmx::bench::Run();
  return 0;
}
