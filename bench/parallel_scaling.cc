// Parallelization and NUMA placement (section III-F): sweeps the
// (worker teams) x (threads per team) grid and reports wall time and the
// NUMA locality fraction from the round-robin tile-row placement. On a
// single-socket host the time column mainly shows scheduling overhead
// while the locality column shows exactly the placement quality a
// multi-socket machine would see (see DESIGN.md, substitutions).
//
// --skew: hub-heavy RMAT workload comparing the paper's static per-team
// queues against the locality-aware work-stealing scheduler
// (docs/SCHEDULER.md) at equal thread count. Reports wall time, per-team
// busy times (their max is the makespan a topology-faithful machine would
// observe), busy-time spread, and the steal count.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"
#include "common/math_util.h"
#include "gen/rmat.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Parallel resource distribution and NUMA locality ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  CooMatrix coo = MakeWorkloadMatrix("R3", env.scale);

  TablePrinter table({"teams x threads", "atmult[s]", "local fraction",
                      "remote read MB"});
  for (const auto& [teams, threads] :
       std::vector<std::pair<int, int>>{
           {1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {4, 1}, {4, 2}}) {
    AtmConfig config = env.config;
    config.num_sockets = teams;
    config.num_worker_teams = teams;
    config.threads_per_team = threads;

    // Placement happens at partitioning time (tile-rows round-robin over
    // the configured sockets), so re-partition per topology.
    ATMatrix atm = PartitionToAtm(coo, config);
    AtMult op(config, env.cost_model);
    AtMultStats stats;
    const double seconds =
        MeasureSeconds([&] { op.Multiply(atm, atm, &stats); });
    table.AddRow(
        {std::to_string(teams) + " x " + std::to_string(threads),
         TablePrinter::Fmt(seconds, 4),
         TablePrinter::Fmt(stats.LocalFraction(), 3),
         TablePrinter::Fmt(
             static_cast<double>(stats.remote_read_bytes) / (1 << 20), 2)});
  }
  table.Print();
  std::printf(
      "\nShape check: with 1 team everything is local; with multiple "
      "teams, A-tile reads stay team-local by construction (tasks follow "
      "their tile-row home) while B-tile reads split across nodes — the "
      "remote fraction the paper's round-robin placement accepts.\n");
}

void RunSkew() {
  BenchEnv env = BenchEnv::FromEnvironment();
  const int teams =
      env.config.num_sockets > 1 ? env.config.num_sockets : 4;
  const int threads = env.config.EffectiveThreadsPerTeam();
  std::printf("=== Skewed workload: static vs work-stealing scheduler ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  // Hub-heavy RMAT (Graph500-style parameters): non-zeros pile into the
  // first tile-rows, so the static round-robin queues hand one team a few
  // dominating hub tasks — exactly the makespan pathology of Sec. VII.
  RmatParams params;
  params.rows = params.cols =
      std::max<index_t>(256, static_cast<index_t>(env.scale * 32768));
  params.nnz = params.rows * 12;
  params.a = 0.57;
  params.b = 0.19;
  params.c = 0.19;
  CooMatrix coo = GenerateRmat(params);
  // Fix the tile grid so the matrix splits into well more tile-rows than
  // teams. Under adaptive tiling the scaled-down workload is homogeneous
  // enough that melting collapses it into a single band — one task, nothing
  // to schedule — and the band structure would shift with the env-measured
  // density thresholds, making runs incomparable.
  AtmConfig base_config = env.config;
  base_config.tiling = TilingMode::kFixed;
  base_config.b_atomic =
      std::max<index_t>(16, PrevPowerOfTwo(params.rows / 16));
  std::printf(
      "RMAT %lld x %lld, nnz=%lld, b_atomic=%lld, teams=%d, "
      "threads/team=%d\n\n",
      static_cast<long long>(params.rows),
      static_cast<long long>(params.cols),
      static_cast<long long>(params.nnz),
      static_cast<long long>(base_config.b_atomic), teams, threads);

  TablePrinter table({"scheduler", "atmult[s]", "busy max[s]", "busy min[s]",
                      "spread", "steals"});
  double static_makespan = 0.0;
  double stealing_makespan = 0.0;
  for (const bool stealing : {false, true}) {
    AtmConfig config = base_config;
    config.num_sockets = teams;
    config.num_worker_teams = teams;
    config.threads_per_team = threads;
    config.work_stealing = stealing;
    ATMatrix atm = PartitionToAtm(coo, config);
    if (!stealing) {
      std::printf("partitioned into %zu x %zu bands\n\n",
                  atm.row_bounds().size() - 1, atm.col_bounds().size() - 1);
    }
    AtMult op(config, env.cost_model);
    AtMultStats stats;
    const double seconds =
        MeasureSeconds([&] { op.Multiply(atm, atm, &stats); });
    // Per-team CPU time, not wall time: with more teams than physical
    // cores the drivers timeshare, and a task's wall duration counts
    // slices where *other* teams ran (which inflates precisely the
    // schedules that keep every team busy). CPU time is what each team's
    // tasks would take on a dedicated socket; its per-team max is the
    // multiply-phase makespan a topology-faithful machine would see.
    double busy_min = stats.team_cpu_seconds.empty()
                          ? 0.0
                          : stats.team_cpu_seconds[0];
    for (double s : stats.team_cpu_seconds) busy_min = std::min(busy_min, s);
    const double busy_max = stats.MaxTeamCpuSeconds();
    (stealing ? stealing_makespan : static_makespan) = busy_max;
    table.AddRow({stealing ? "stealing" : "static",
                  TablePrinter::Fmt(seconds, 4),
                  TablePrinter::Fmt(busy_max, 4),
                  TablePrinter::Fmt(busy_min, 4),
                  TablePrinter::Fmt(
                      busy_max > 0 ? 1.0 - busy_min / busy_max : 0.0, 3),
                  std::to_string(stats.tasks_stolen)});
  }
  table.Print();
  if (static_makespan > 0.0) {
    std::printf(
        "\nMakespan (max per-team busy time): static %.4fs -> stealing "
        "%.4fs, reduction %.1f%%\n",
        static_makespan, stealing_makespan,
        100.0 * (1.0 - stealing_makespan / static_makespan));
  }
  std::printf(
      "Shape check: the hub tile-rows pin the static makespan to one "
      "team's queue; stealing levels the busy times while home tasks keep "
      "first-touch locality (stolen tasks are the cheap cold tail).\n");
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("parallel_scaling", argc, argv);
  bool skew = false;
  // --repeat=N re-runs the selected workload N times: a long-lived
  // process for live-scrape / flight-recorder scenarios (CI polls
  // /metrics between repetitions and expects rate.* gauges to move).
  int repeat = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skew") == 0) skew = true;
    static constexpr char kRepeat[] = "--repeat=";
    if (std::strncmp(argv[i], kRepeat, sizeof(kRepeat) - 1) == 0) {
      repeat = std::atoi(argv[i] + sizeof(kRepeat) - 1);
    }
  }
  if (repeat < 1) repeat = 1;
  for (int run = 0; run < repeat; ++run) {
    if (repeat > 1) std::printf("=== repetition %d/%d ===\n", run + 1, repeat);
    if (skew) {
      atmx::bench::RunSkew();
    } else {
      atmx::bench::Run();
    }
  }
  return 0;
}
