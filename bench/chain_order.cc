// Extension experiment: sparse matrix-chain order optimization.
//
// The paper's introduction motivates adaptive physical organization with
// the SpMacho [9] observation that a fixed evaluation order hurts sparse
// chain multiplications. This bench plans A * B * C chains with the
// density-map-driven DP optimizer (ops/chain.h) and compares the measured
// runtime of the planned order against strict left-to-right evaluation.
//
// Expected shape: when a thin/dense factor sits at the chain's end, the
// planner parenthesizes right-to-left and wins by the ratio of the
// intermediate sizes; for balanced chains the two orders tie.

#include <cstdio>

#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "ops/chain.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

struct ChainCase {
  const char* name;
  std::vector<CooMatrix> matrices;
};

double MeasurePlan(const std::string& case_name,
                   const std::vector<const ATMatrix*>& chain,
                   const ChainPlan& plan, const AtMult& op) {
  return BenchReporter::Global().MeasureCase(
      case_name, [&] { ExecuteChain(chain, plan, op); });
}

// A left-to-right plan for comparison: split[i][j] = j - 1.
ChainPlan LeftToRightPlan(int n) {
  ChainPlan plan;
  plan.split.assign(n, std::vector<int>(n, -1));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) plan.split[i][j] = j - 1;
  }
  return plan;
}

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  BenchReporter::Global().Configure("chain_order", env);
  std::printf("=== Chain-order optimization (SpMacho extension) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  const index_t n = static_cast<index_t>(3000 * env.scale / 0.03);
  std::vector<ChainCase> cases;
  {
    ChainCase c{"A*B*thin", {}};
    c.matrices.push_back(GenerateUniform(n, n, n * 24, 1));
    c.matrices.push_back(GenerateUniform(n, n, n * 24, 2));
    c.matrices.push_back(DenseToCoo(GenerateFullDense(n, 8, 3)));
    cases.push_back(std::move(c));
  }
  {
    ChainCase c{"thin^T*A*B", {}};
    c.matrices.push_back(DenseToCoo(GenerateFullDense(8, n, 4)));
    c.matrices.push_back(GenerateUniform(n, n, n * 24, 5));
    c.matrices.push_back(GenerateUniform(n, n, n * 24, 6));
    cases.push_back(std::move(c));
  }
  {
    ChainCase c{"balanced", {}};
    c.matrices.push_back(GenerateUniform(n, n, n * 12, 7));
    c.matrices.push_back(GenerateUniform(n, n, n * 12, 8));
    c.matrices.push_back(GenerateUniform(n, n, n * 12, 9));
    cases.push_back(std::move(c));
  }
  {
    ChainCase c{"4-chain mixed", {}};
    c.matrices.push_back(GenerateUniform(n / 2, n, n * 10, 10));
    c.matrices.push_back(
        GenerateDiagonalDenseBlocks(n, 8, std::max<index_t>(8, n / 24),
                                    0.9, n * 4, 11));
    c.matrices.push_back(GenerateUniform(n, n, n * 10, 12));
    c.matrices.push_back(DenseToCoo(GenerateFullDense(n, 16, 13)));
    cases.push_back(std::move(c));
  }

  TablePrinter table({"chain", "planned order", "planned[s]", "ltr[s]",
                      "speedup", "est ratio"});
  AtMult op(env.config, env.cost_model);
  for (ChainCase& c : cases) {
    std::vector<ATMatrix> atms;
    atms.reserve(c.matrices.size());
    for (CooMatrix& coo : c.matrices) {
      atms.push_back(PartitionToAtm(coo, env.config));
    }
    std::vector<const ATMatrix*> chain;
    std::vector<const DensityMap*> maps;
    for (const ATMatrix& atm : atms) {
      chain.push_back(&atm);
      maps.push_back(&atm.density_map());
    }
    ChainPlan planned =
        PlanChain(maps, env.cost_model, env.config.rho_write);
    ChainPlan ltr = LeftToRightPlan(static_cast<int>(chain.size()));
    const double est_ltr =
        EstimateLeftToRightCost(maps, env.cost_model, env.config.rho_write);

    const double t_planned =
        MeasurePlan(std::string(c.name) + ".planned", chain, planned, op);
    const double t_ltr =
        MeasurePlan(std::string(c.name) + ".ltr", chain, ltr, op);
    table.AddRow({c.name, planned.ToString(),
                  TablePrinter::Fmt(t_planned, 4),
                  TablePrinter::Fmt(t_ltr, 4),
                  TablePrinter::Fmt(t_ltr / t_planned, 2) + "x",
                  TablePrinter::Fmt(est_ltr /
                                        std::max(1.0,
                                                 planned.estimated_cost),
                                    2) +
                      "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("chain_order", argc, argv);
  atmx::bench::Run();
  return 0;
}
