// Extension experiment: sparse matrix-chain order optimization.
//
// The paper's introduction motivates adaptive physical organization with
// the SpMacho [9] observation that a fixed evaluation order hurts sparse
// chain multiplications. This bench plans A * B * C chains with the
// density-map-driven DP optimizer (ops/chain.h) and compares the measured
// runtime of the planned order against strict left-to-right evaluation.
//
// Expected shape: when a thin/dense factor sits at the chain's end, the
// planner parenthesizes right-to-left and wins by the ratio of the
// intermediate sizes; for balanced chains the two orders tie.

#include <cstdint>
#include <cstdio>
#include <limits>

#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "ops/chain.h"
#include "ops/chain_exec.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

struct ChainCase {
  const char* name;
  std::vector<CooMatrix> matrices;
};

double MeasurePlan(const std::string& case_name,
                   const std::vector<const ATMatrix*>& chain,
                   const ChainPlan& plan, const AtMult& op) {
  return BenchReporter::Global().MeasureCase(
      case_name, [&] { ExecuteChain(chain, plan, op); });
}

// A left-to-right plan for comparison: split[i][j] = j - 1.
ChainPlan LeftToRightPlan(int n) {
  ChainPlan plan;
  plan.split.assign(n, std::vector<int>(n, -1));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) plan.split[i][j] = j - 1;
  }
  return plan;
}

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  BenchReporter::Global().Configure("chain_order", env);
  std::printf("=== Chain-order optimization (SpMacho extension) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  const index_t n = static_cast<index_t>(3000 * env.scale / 0.03);
  std::vector<ChainCase> cases;
  {
    ChainCase c{"A*B*thin", {}};
    c.matrices.push_back(GenerateUniform(n, n, n * 24, 1));
    c.matrices.push_back(GenerateUniform(n, n, n * 24, 2));
    c.matrices.push_back(DenseToCoo(GenerateFullDense(n, 8, 3)));
    cases.push_back(std::move(c));
  }
  {
    ChainCase c{"thin^T*A*B", {}};
    c.matrices.push_back(DenseToCoo(GenerateFullDense(8, n, 4)));
    c.matrices.push_back(GenerateUniform(n, n, n * 24, 5));
    c.matrices.push_back(GenerateUniform(n, n, n * 24, 6));
    cases.push_back(std::move(c));
  }
  {
    ChainCase c{"balanced", {}};
    c.matrices.push_back(GenerateUniform(n, n, n * 12, 7));
    c.matrices.push_back(GenerateUniform(n, n, n * 12, 8));
    c.matrices.push_back(GenerateUniform(n, n, n * 12, 9));
    cases.push_back(std::move(c));
  }
  {
    ChainCase c{"4-chain mixed", {}};
    c.matrices.push_back(GenerateUniform(n / 2, n, n * 10, 10));
    c.matrices.push_back(
        GenerateDiagonalDenseBlocks(n, 8, std::max<index_t>(8, n / 24),
                                    0.9, n * 4, 11));
    c.matrices.push_back(GenerateUniform(n, n, n * 10, 12));
    c.matrices.push_back(DenseToCoo(GenerateFullDense(n, 16, 13)));
    cases.push_back(std::move(c));
  }

  TablePrinter table({"chain", "planned order", "planned[s]", "ltr[s]",
                      "speedup", "est ratio"});
  AtMult op(env.config, env.cost_model);
  for (ChainCase& c : cases) {
    std::vector<ATMatrix> atms;
    atms.reserve(c.matrices.size());
    for (CooMatrix& coo : c.matrices) {
      atms.push_back(PartitionToAtm(coo, env.config));
    }
    std::vector<const ATMatrix*> chain;
    std::vector<const DensityMap*> maps;
    for (const ATMatrix& atm : atms) {
      chain.push_back(&atm);
      maps.push_back(&atm.density_map());
    }
    ChainPlan planned =
        PlanChain(maps, env.cost_model, env.config.rho_write);
    ChainPlan ltr = LeftToRightPlan(static_cast<int>(chain.size()));
    const double est_ltr =
        EstimateLeftToRightCost(maps, env.cost_model, env.config.rho_write);

    const double t_planned =
        MeasurePlan(std::string(c.name) + ".planned", chain, planned, op);
    const double t_ltr =
        MeasurePlan(std::string(c.name) + ".ltr", chain, ltr, op);
    table.AddRow({c.name, planned.ToString(),
                  TablePrinter::Fmt(t_planned, 4),
                  TablePrinter::Fmt(t_ltr, 4),
                  TablePrinter::Fmt(t_ltr / t_planned, 2) + "x",
                  TablePrinter::Fmt(est_ltr /
                                        std::max(1.0,
                                                 planned.estimated_cost),
                                    2) +
                      "x"});
  }
  table.Print();

  // Finite memory budget: the chain-scope water level plans per-product
  // write thresholds against a shared resident-set budget and the fused
  // DAG admission-gates tile tasks, so a finite result_mem_limit_bytes
  // keeps the chain fused instead of silently downgrading it. The budget
  // is bracketed between the memory-minimal floor (1-byte probe) and the
  // unconstrained projection (huge probe) so the case is feasible by
  // construction yet as binding as the plan allows.
  std::printf("\n=== Finite memory budget (fused, admission-gated) ===\n");
  {
    std::vector<CooMatrix> coos;
    coos.push_back(GenerateUniform(n, n, n * 12, 14));
    coos.push_back(GenerateUniform(n, n, n * 12, 15));
    coos.push_back(GenerateUniform(n, n, n * 12, 16));
    coos.push_back(GenerateUniform(n, n, n * 12, 17));
    std::vector<ATMatrix> atms;
    atms.reserve(coos.size());
    for (CooMatrix& coo : coos) {
      atms.push_back(PartitionToAtm(coo, env.config));
    }
    std::vector<const ATMatrix*> chain;
    for (const ATMatrix& atm : atms) chain.push_back(&atm);
    // Left-to-right keeps every intermediate live into the peak step, so
    // the shared budget genuinely constrains the water level.
    ChainPlan plan = LeftToRightPlan(static_cast<int>(chain.size()));

    AtmConfig fused_config = env.config;
    fused_config.fused_chains = true;
    AtmConfig floor_config = fused_config;
    floor_config.result_mem_limit_bytes = 1;
    const internal::ChainBudgetPlan floor_plan = internal::PlanChainBudget(
        chain, plan, AtMult(floor_config, env.cost_model));
    AtmConfig wide_config = fused_config;
    wide_config.result_mem_limit_bytes =
        std::numeric_limits<std::size_t>::max() / 2;
    const internal::ChainBudgetPlan wide_plan = internal::PlanChainBudget(
        chain, plan, AtMult(wide_config, env.cost_model));
    const std::size_t budget =
        floor_plan.projected_peak_bytes +
        (wide_plan.projected_peak_bytes - floor_plan.projected_peak_bytes) /
            2;

    AtmConfig budget_config = fused_config;
    budget_config.result_mem_limit_bytes = budget;
    AtMult budget_op(budget_config, env.cost_model);
    AtmConfig fallback_config = env.config;
    fallback_config.fused_chains = false;
    fallback_config.result_mem_limit_bytes = budget;
    AtMult fallback_op(fallback_config, env.cost_model);

    ChainExecStats stats;
    ExecuteChain(chain, plan, budget_op, &stats);  // warm-up + stats
    const double t_budget =
        MeasurePlan("budget.fused", chain, plan, budget_op);
    ExecuteChain(chain, plan, fallback_op);
    const double t_fallback =
        MeasurePlan("budget.unfused", chain, plan, fallback_op);

    TablePrinter btable({"case", "budget", "projected", "resident peak",
                         "fused", "time[s]"});
    btable.AddRow(
        {"admission-gated", TablePrinter::FmtBytes(budget),
         TablePrinter::FmtBytes(stats.projected_peak_bytes),
         TablePrinter::FmtBytes(stats.resident_peak_bytes),
         stats.fused ? "yes" : "no(" + stats.fallback_reason + ")",
         TablePrinter::Fmt(t_budget, 4)});
    btable.AddRow({"unfused fallback", TablePrinter::FmtBytes(budget), "-",
                   "-", "no", TablePrinter::Fmt(t_fallback, 4)});
    btable.Print();
  }
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("chain_order", argc, argv);
  atmx::bench::Run();
  return 0;
}
