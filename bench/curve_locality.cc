// Space-filling-curve comparison (section II-C1): the paper picks the
// Z-curve over the Hilbert curve because "the Z-value can be efficiently
// computed with bit interleaving", accepting slightly worse locality.
// This bench quantifies both sides of that trade-off:
//   - encoding throughput (Z's bit interleave vs. Hilbert's rotations),
//   - reordering cost of a real workload,
//   - locality quality: mean Manhattan jump between consecutive elements
//     in curve order (lower = better cache behaviour for 2D scans).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "bench/bench_common.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "morton/hilbert.h"
#include "morton/morton.h"

namespace atmx::bench {
namespace {

double MeanJump(const std::vector<CooEntry>& sorted) {
  if (sorted.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    total += std::abs(sorted[i].row - sorted[i - 1].row) +
             std::abs(sorted[i].col - sorted[i - 1].col);
  }
  return total / static_cast<double>(sorted.size() - 1);
}

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Z-curve vs. Hilbert curve (section II-C1 choice) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  // Encoding throughput.
  {
    constexpr index_t kProbes = 2'000'000;
    Rng rng(9);
    std::vector<index_t> coords(2 * kProbes);
    for (auto& v : coords) {
      v = static_cast<index_t>(rng.NextBounded(1 << 20));
    }
    WallTimer timer;
    std::uint64_t sink = 0;
    for (index_t i = 0; i < kProbes; ++i) {
      sink ^= MortonEncode(coords[2 * i], coords[2 * i + 1]);
    }
    const double z_ns = timer.ElapsedSeconds() * 1e9 / kProbes;
    timer.Restart();
    for (index_t i = 0; i < kProbes; ++i) {
      sink ^= HilbertEncode(coords[2 * i], coords[2 * i + 1], 20);
    }
    const double h_ns = timer.ElapsedSeconds() * 1e9 / kProbes;
    if (sink == 42) std::printf(" ");  // defeat dead-code elimination
    std::printf("encode cost:   Z %.2f ns/elem, Hilbert %.2f ns/elem "
                "(%.1fx more expensive)\n\n",
                z_ns, h_ns, h_ns / z_ns);
  }

  TablePrinter table({"Matrix", "Z sort[ms]", "H sort[ms]", "Z jump",
                      "H jump", "row-major jump"});
  for (const char* id : {"R3", "R7", "G1", "G9"}) {
    CooMatrix coo = MakeWorkloadMatrix(id, env.scale);
    const int order = CeilLog2(std::max(coo.rows(), coo.cols()));

    std::vector<CooEntry> z_sorted = coo.entries();
    WallTimer timer;
    std::sort(z_sorted.begin(), z_sorted.end(),
              [](const CooEntry& a, const CooEntry& b) {
                return MortonEncode(a.row, a.col) <
                       MortonEncode(b.row, b.col);
              });
    const double z_ms = timer.ElapsedSeconds() * 1e3;

    std::vector<CooEntry> h_sorted = coo.entries();
    timer.Restart();
    std::sort(h_sorted.begin(), h_sorted.end(),
              [order](const CooEntry& a, const CooEntry& b) {
                return HilbertEncode(a.row, a.col, order) <
                       HilbertEncode(b.row, b.col, order);
              });
    const double h_ms = timer.ElapsedSeconds() * 1e3;

    std::vector<CooEntry> row_sorted = coo.entries();
    std::sort(row_sorted.begin(), row_sorted.end(),
              [](const CooEntry& a, const CooEntry& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });

    table.AddRow({id, TablePrinter::Fmt(z_ms, 2),
                  TablePrinter::Fmt(h_ms, 2),
                  TablePrinter::Fmt(MeanJump(z_sorted), 2),
                  TablePrinter::Fmt(MeanJump(h_sorted), 2),
                  TablePrinter::Fmt(MeanJump(row_sorted), 2)});
  }
  table.Print();
  std::printf(
      "\nShape check: Hilbert yields slightly smaller jumps (better 2D "
      "locality) but costs several times more per encoded element — the "
      "paper's rationale for choosing the Z-curve.\n");
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("curve_locality", argc, argv);
  atmx::bench::Run();
  return 0;
}
