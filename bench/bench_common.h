// Shared infrastructure of the figure/table reproduction harnesses: the
// benchmark configuration (scaled to the host via environment variables),
// timing helpers, and the baseline kernel runners every figure compares
// against.
//
// Environment knobs (all optional):
//   ATMX_SCALE    linear workload scale vs. Table I (default 0.03)
//   ATMX_LLC      simulated last-level cache bytes   (default 1 MiB)
//   ATMX_TEAMS    worker teams                       (default 1)
//   ATMX_THREADS  threads per team                   (default 1)
//   ATMX_CALIBRATE set to 1 to micro-calibrate the cost model first
//   ATMX_TRACE_OUT  path; when set (and the library is built with
//                   ATMX_OBS=ON) the bench records a Chrome trace +
//                   decision audit and writes the JSON there at exit

#ifndef ATMX_BENCH_BENCH_COMMON_H_
#define ATMX_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table_printer.h"
#include "cost/cost_model.h"
#include "gen/workloads.h"
#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx::bench {

struct BenchEnv {
  double scale = 0.03;
  AtmConfig config;
  CostModel cost_model;

  // Parses the ATMX_* environment variables. Also arms tracing when
  // ATMX_TRACE_OUT is set (see MaybeEnableTracing).
  static BenchEnv FromEnvironment();

  // Header line describing the environment (printed by every bench).
  std::string Describe() const;
};

// Wall time of fn() in seconds; re-runs short measurements (< 50 ms) twice
// more and reports the median so the suite stays fast yet stable.
double MeasureSeconds(const std::function<void()>& fn);

// The paper's baselines (section IV-C), all sequential like the MATLAB/R
// algorithms the paper compares to:
//   spspsp_gemm — plain Gustavson CSR x CSR -> CSR (the "1.0" baseline)
//   spspd_gemm  — CSR x CSR -> dense array
//   spdd_gemm   — CSR x (densified B) -> dense array
//   ddd_gemm    — densified A x densified B -> dense array
struct BaselineResult {
  double seconds = 0.0;
  std::size_t result_bytes = 0;
  bool ran = false;  // dense baselines are skipped for infeasible sizes
};

BaselineResult RunSpspsp(const CsrMatrix& a, const CsrMatrix& b);
BaselineResult RunSpspd(const CsrMatrix& a, const CsrMatrix& b);
// max_dense_dim guards the O(n^2) dense materializations on big inputs.
BaselineResult RunSpdd(const CsrMatrix& a, const CsrMatrix& b,
                       index_t max_dense_dim);
BaselineResult RunDdd(const CsrMatrix& a, const CsrMatrix& b,
                      index_t max_dense_dim);

// Formats a relative performance number ("3.42x") or "-" if not run.
std::string FmtSpeedup(const BaselineResult& baseline, double atmult_seconds);
std::string FmtRel(const BaselineResult& baseline,
                   const BaselineResult& reference);

// Arms the trace recorder + decision log and registers an atexit hook
// that writes the Chrome trace JSON to `path`. With a library built under
// ATMX_OBS=OFF this prints a warning and does nothing. Idempotent; the
// last path wins.
void EnableTracingTo(const std::string& path);

// Scans argv for `--trace-out=<path>` (calling EnableTracingTo on a
// match) and honours the ATMX_TRACE_OUT environment variable. Benches
// call this first thing in main().
void MaybeEnableTracing(int argc, char** argv);

}  // namespace atmx::bench

#endif  // ATMX_BENCH_BENCH_COMMON_H_
