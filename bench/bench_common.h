// Shared infrastructure of the figure/table reproduction harnesses: the
// benchmark configuration (scaled to the host via environment variables),
// timing helpers, and the baseline kernel runners every figure compares
// against.
//
// Environment knobs (all optional):
//   ATMX_SCALE    linear workload scale vs. Table I (default 0.03)
//   ATMX_LLC      simulated last-level cache bytes   (default 1 MiB)
//   ATMX_TEAMS    worker teams                       (default 1)
//   ATMX_THREADS  threads per team                   (default 1)
//   ATMX_CALIBRATE set to 1 to micro-calibrate the cost model first
//   ATMX_TRACE_OUT  path; when set (and the library is built with
//                   ATMX_OBS=ON) the bench records a Chrome trace +
//                   decision audit and writes the JSON there at exit
//   ATMX_BENCH_OUT  path; when set the bench writes a machine-readable
//                   BENCH JSON report there at exit (works in any build;
//                   hardware-counter fields appear only under ATMX_OBS=ON)
//   ATMX_BENCH_REPS timed repetitions per reported case (default 3)
//   ATMX_GIT_SHA    recorded verbatim in the report ("unknown" if unset)
//   ATMX_STATS_PORT when set (and ATMX_OBS=ON): serve live stats on
//                   127.0.0.1:<port> (0 = ephemeral; the bound port is
//                   printed on stderr), start the windowed-rate sampler,
//                   and install the crash flight recorder
//   ATMX_STATS_PERIOD_MS  sampler tick period (default 250)
//   ATMX_STATS_LINGER     seconds to keep serving after the bench body
//                         finishes, so short runs stay scrape-able in CI
//   ATMX_FLIGHT     1/0 — install the flight recorder independently of
//                   (or suppress it despite) ATMX_STATS_PORT
//   ATMX_AUDIT_OUT  path; when set (and ATMX_OBS=ON) the bench records
//                   the prediction-vs-outcome audit ledger and writes the
//                   schema-versioned JSON there at exit (replayed by
//                   `atmx audit` / tools/audit_report.py)

#ifndef ATMX_BENCH_BENCH_COMMON_H_
#define ATMX_BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/table_printer.h"
#include "cost/cost_model.h"
#include "gen/workloads.h"
#include "storage/coo_matrix.h"
#include "storage/csr_matrix.h"
#include "storage/dense_matrix.h"

namespace atmx::bench {

struct BenchEnv {
  double scale = 0.03;
  AtmConfig config;
  CostModel cost_model;

  // Parses the ATMX_* environment variables. Also arms tracing when
  // ATMX_TRACE_OUT is set (see MaybeEnableTracing).
  static BenchEnv FromEnvironment();

  // Header line describing the environment (printed by every bench).
  std::string Describe() const;
};

// Wall time of fn() in seconds; re-runs short measurements (< 50 ms) twice
// more and reports the median so the suite stays fast yet stable.
double MeasureSeconds(const std::function<void()>& fn);

// The paper's baselines (section IV-C), all sequential like the MATLAB/R
// algorithms the paper compares to:
//   spspsp_gemm — plain Gustavson CSR x CSR -> CSR (the "1.0" baseline)
//   spspd_gemm  — CSR x CSR -> dense array
//   spdd_gemm   — CSR x (densified B) -> dense array
//   ddd_gemm    — densified A x densified B -> dense array
struct BaselineResult {
  double seconds = 0.0;
  std::size_t result_bytes = 0;
  bool ran = false;  // dense baselines are skipped for infeasible sizes
};

BaselineResult RunSpspsp(const CsrMatrix& a, const CsrMatrix& b);
BaselineResult RunSpspd(const CsrMatrix& a, const CsrMatrix& b);
// max_dense_dim guards the O(n^2) dense materializations on big inputs.
BaselineResult RunSpdd(const CsrMatrix& a, const CsrMatrix& b,
                       index_t max_dense_dim);
BaselineResult RunDdd(const CsrMatrix& a, const CsrMatrix& b,
                      index_t max_dense_dim);

// Formats a relative performance number ("3.42x") or "-" if not run.
std::string FmtSpeedup(const BaselineResult& baseline, double atmult_seconds);
std::string FmtRel(const BaselineResult& baseline,
                   const BaselineResult& reference);

// Arms the trace recorder + decision log and registers an atexit hook
// that writes the Chrome trace JSON to `path`. With a library built under
// ATMX_OBS=OFF this prints a warning and does nothing. Idempotent; the
// last path wins.
void EnableTracingTo(const std::string& path);

// Scans argv for `--trace-out=<path>` (calling EnableTracingTo on a
// match) and honours the ATMX_TRACE_OUT environment variable. Benches
// call this first thing in main().
void MaybeEnableTracing(int argc, char** argv);

// Arms the prediction-vs-outcome audit ledger (obs::AuditLedger) and
// registers an atexit hook writing the schema-versioned ledger JSON to
// `path`. Under ATMX_OBS=OFF this prints a warning and does nothing.
void EnableAuditOutputTo(const std::string& path);

// Scans argv for `--audit-out=<path>` and honours ATMX_AUDIT_OUT.
// Included in InitBenchTelemetry.
void MaybeEnableAuditOut(int argc, char** argv);

// Machine-readable benchmark report (schema_version 1):
//
//   {"schema_version": 1, "bench": "<name>", "git_sha": "...",
//    "unix_time": <sec>, "config": {"scale": ..., "llc_bytes": ...,
//    "b_atomic": ..., "teams": ..., "threads": ..., "rho_read": ...,
//    "rho_write": ..., "obs_enabled": 0|1, "perf_counters": 0|1},
//    "cases": [{"name": "...", "repetitions": N,
//               "wall_seconds": {"min": ..., "median": ..., "p95": ...,
//                                "max": ..., "samples": [...]},
//               "counters": {"cycles": ..., ...}}]}
//
// "counters" is present only when hardware counters were live for the
// case. tools/compare_bench.py consumes two of these files and gates on
// wall-time regressions; the schema_version must be bumped on any
// incompatible change.
class BenchReporter {
 public:
  static BenchReporter& Global();

  // Records the bench name and the environment the numbers were taken
  // under. Call once, right after BenchEnv::FromEnvironment().
  void Configure(const std::string& bench_name, const BenchEnv& env);

  // Arms report output: registers an atexit hook writing the JSON to
  // `path`. Idempotent; the last path wins.
  void ArmOutput(const std::string& path);
  bool armed() const { return !out_path_.empty(); }

  // Timed repetitions per case when armed (ATMX_BENCH_REPS, default 3).
  int repetitions() const { return repetitions_; }

  // Measures fn() and returns the median wall time in seconds. When the
  // reporter is not armed this is exactly MeasureSeconds(fn); when armed
  // it runs repetitions() timed runs, records all samples under `name`,
  // and (ATMX_OBS=ON, counters live) attaches the summed hardware-counter
  // deltas of the calling thread.
  double MeasureCase(const std::string& name, const std::function<void()>& fn);

  // Appends one externally timed sample to `name` (no-op when not armed).
  // For one-shot measurements that are too expensive to repeat.
  void AddSample(const std::string& name, double seconds);

  // The report as a JSON string / written to a file.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  // Drops all recorded cases and configuration (for tests).
  void Clear();

 private:
  friend void MaybeEnableBenchReport(const std::string& bench_name, int argc,
                                     char** argv);

  struct Case {
    std::string name;
    std::vector<double> samples;
    bool has_counters = false;
    unsigned counters_present = 0;
    unsigned long long counters[6] = {0, 0, 0, 0, 0, 0};
  };

  Case* FindOrAddCase(const std::string& name);

  std::string bench_name_ = "unnamed";
  std::string out_path_;
  int repetitions_ = 3;
  bool configured_ = false;
  double scale_ = 0.0;
  long long llc_bytes_ = 0;
  long long b_atomic_ = 0;
  int teams_ = 0;
  int threads_ = 0;
  double rho_read_ = 0.0;
  double rho_write_ = 0.0;
  std::vector<Case> cases_;
};

// Scans argv for `--bench-out=<path>` and honours the ATMX_BENCH_OUT
// environment variable; arms BenchReporter::Global() on a match. Benches
// call this next to MaybeEnableTracing in main().
void MaybeEnableBenchReport(const std::string& bench_name, int argc,
                            char** argv);

// Scans argv for `--stats-port=<port>` (ATMX_STATS_PORT as fallback) and,
// on a match, starts the embedded stats server on 127.0.0.1 (port 0 =
// ephemeral; the bound port is announced on stderr as
// `stats: serving http://127.0.0.1:<port>/metrics`), the windowed-rate
// sampler (ATMX_STATS_PERIOD_MS), and the crash flight recorder
// (suppressible via ATMX_FLIGHT=0; ATMX_FLIGHT=1 installs it even without
// a stats port). An atexit hook lingers ATMX_STATS_LINGER seconds and
// stops sampler + server in order. Under ATMX_OBS=OFF this warns and does
// nothing.
void MaybeStartStatsServer(int argc, char** argv);

// One-call telemetry init for bench main()s: MaybeEnableTracing +
// MaybeEnableBenchReport + MaybeEnableAuditOut + MaybeStartStatsServer.
void InitBenchTelemetry(const std::string& bench_name, int argc,
                        char** argv);

}  // namespace atmx::bench

#endif  // ATMX_BENCH_BENCH_COMMON_H_
