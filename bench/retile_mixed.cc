// Extension experiment: pre-multiplication re-tiling (the paper's stated
// future work, section IV-C): "Such situations could be avoided by a
// dynamic re-tiling of the left-hand matrix as a part of a
// pre-multiplication optimization, which, however, is left for future
// work."
//
// Scenario: the hypersparse R7 case from Fig. 9a — A melts into very few
// tiles, B (dense) is tiled finely, so every pair slices A with reference
// windows (binary column searches per row). AlignContraction splits A at
// B's contraction boundaries once, up front.
//
// Expected shape: re-tiling recovers a substantial part of the slicing
// overhead for the hypersparse case, at a one-time cost far below the
// multiplication itself.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "gen/synthetic.h"
#include "ops/atmult.h"
#include "ops/retile.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Re-tiling ablation (paper's future-work feature) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  TablePrinter table({"Matrix", "plain[s]", "retiled[s]", "speedup",
                      "retile cost[s]", "A tiles before/after"});
  AtMult op(env.config, env.cost_model);
  for (const char* id : {"R7", "R8", "R9", "R3"}) {
    CooMatrix coo = MakeWorkloadMatrix(id, env.scale);
    CsrMatrix csr = CooToCsr(coo);
    const index_t k = csr.cols();
    const index_t free_dim = std::max<index_t>(
        8, static_cast<index_t>(3.0 * csr.nnz() / k));
    DenseMatrix b_dense = GenerateFullDense(k, free_dim, 11);

    ATMatrix a = PartitionToAtm(coo, env.config);
    ATMatrix b = AtmFromDense(b_dense, env.config);

    const double plain_seconds =
        MeasureSeconds([&] { op.Multiply(a, b); });

    WallTimer retile_timer;
    ATMatrix aligned = AlignContraction(a, b, env.config);
    const double retile_seconds = retile_timer.ElapsedSeconds();
    const double aligned_seconds =
        MeasureSeconds([&] { op.Multiply(aligned, b); });

    table.AddRow({id, TablePrinter::Fmt(plain_seconds, 4),
                  TablePrinter::Fmt(aligned_seconds, 4),
                  TablePrinter::Fmt(plain_seconds / aligned_seconds, 2) +
                      "x",
                  TablePrinter::Fmt(retile_seconds, 4),
                  std::to_string(a.num_tiles()) + "/" +
                      std::to_string(aligned.num_tiles())});
  }
  table.Print();
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("retile_mixed", argc, argv);
  atmx::bench::Run();
  return 0;
}
