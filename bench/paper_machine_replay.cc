// What-if replay of the paper's machine configuration: 4 sockets x 10
// cores, 24 MB LLC (b_atomic = 1024 at full scale, scaled here), default
// cost constants (rho0_R = 0.25, rho0_W ~ 0.03). Host wall-times under
// this configuration are *not* the paper's times — the point of this
// bench is the *decision traces*: tile classification at rho0_R = 0.25,
// the dense/sparse tile census, JIT conversions firing against dense
// operands, and the NUMA placement over 4 teams.

#include <cstdio>

#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"
#include "topology/system_topology.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  // Paper configuration, with the LLC scaled by the same factor as the
  // workload dimensions so tile geometry stays proportional.
  AtmConfig config;
  SystemTopology::PaperMachine().ApplyTo(&config);
  config.llc_bytes = std::max<index_t>(
      64 * 1024, static_cast<index_t>(config.llc_bytes * env.scale));
  const CostModel paper_model;  // default constants: rho0_R = 0.25
  config.rho_read = paper_model.ReadTurnaround();
  config.rho_write = paper_model.WriteTurnaround();

  std::printf("=== Paper-machine replay (decision traces) ===\n");
  std::printf("topology: %s, scaled llc=%lldB, b_atomic=%lld, "
              "rho0_R=%.3f, rho0_W=%.4f\n\n",
              SystemTopology::PaperMachine().ToString().c_str(),
              (long long)config.llc_bytes,
              (long long)config.AtomicBlockSize(), config.rho_read,
              config.rho_write);

  TablePrinter table({"Matrix", "tiles(d/sp)", "pairs", "conv(s->d)",
                      "conv(d->s)", "C tiles(d/sp)", "local frac",
                      "opt[%]"});
  AtMult op(config, paper_model);
  for (const char* id : {"R1", "R2", "R3", "R5", "R7", "G5"}) {
    CooMatrix coo = MakeWorkloadMatrix(id, env.scale);
    ATMatrix atm = PartitionToAtm(coo, config);
    AtMultStats stats;
    op.Multiply(atm, atm, &stats);
    table.AddRow(
        {id,
         std::to_string(atm.NumDenseTiles()) + "/" +
             std::to_string(atm.NumSparseTiles()),
         std::to_string(stats.pair_multiplications),
         std::to_string(stats.sparse_to_dense_conversions),
         std::to_string(stats.dense_to_sparse_conversions),
         std::to_string(stats.dense_result_tiles) + "/" +
             std::to_string(stats.sparse_result_tiles),
         TablePrinter::Fmt(stats.LocalFraction(), 3),
         TablePrinter::Fmt(stats.OptimizeFraction() * 100, 2)});
  }
  table.Print();

  // The paper's R1 dense x sparse conversion peak (section IV-D): many R1
  // tiles sit slightly below rho0_R; against a full dense operand the
  // optimizer converts them.
  {
    CooMatrix coo = MakeWorkloadMatrix("R1", env.scale);
    CsrMatrix csr = CooToCsr(coo);
    const index_t free_dim = std::max<index_t>(
        8, static_cast<index_t>(3.0 * csr.nnz() / csr.rows()));
    DenseMatrix dense = GenerateFullDense(free_dim, csr.rows(), 3);
    ATMatrix a = AtmFromDense(dense, config);
    ATMatrix b = PartitionToAtm(coo, config);
    AtMultStats stats;
    op.Multiply(a, b, &stats);
    std::printf("\nR1 dense x sparse (paper's conversion peak case): "
                "%lld conversions, optimizer share %.2f%% "
                "(paper: peak ~7.5%%)\n",
                (long long)(stats.sparse_to_dense_conversions +
                            stats.dense_to_sparse_conversions),
                stats.OptimizeFraction() * 100);
  }
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("paper_machine_replay", argc, argv);
  atmx::bench::Run();
  return 0;
}
