// Ablation: the atomic block size b_atomic = 2^k (section II-B2). The
// paper reports k = 10 as optimal for a 24 MB LLC and shows R3 at k = 6
// vs. k = 10 in Fig. 2; this sweep reproduces the trade-off — too-small
// blocks inflate administrative cost and recursion depth, too-large blocks
// cannot resolve the heterogeneous substructure.
// Also sweeps alpha (the tiles-in-LLC factor of Eq. 1 & 2).

#include <cstdio>

#include "bench/bench_common.h"
#include "kernels/sparse_kernels.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Ablation: atomic block size and alpha ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  CooMatrix coo = MakeWorkloadMatrix("R3", env.scale);
  CsrMatrix csr = CooToCsr(coo);
  const BaselineResult baseline = RunSpspsp(csr, csr);
  std::printf("R3 surrogate, C = A*A; spspsp baseline %.4fs\n\n",
              baseline.seconds);

  std::printf("--- b_atomic sweep (adaptive tiling) ---\n");
  TablePrinter table({"b_atomic", "tiles(d/sp)", "partition[s]",
                      "atmult[s]", "vs spspsp", "ATM bytes"});
  for (index_t b = 16; b <= 512; b *= 2) {
    AtmConfig config = env.config;
    config.b_atomic = b;
    PartitionStats pstats;
    ATMatrix atm = PartitionToAtm(coo, config, &pstats);
    AtMult op(config, env.cost_model);
    const double seconds = MeasureSeconds([&] { op.Multiply(atm, atm); });
    table.AddRow({std::to_string(b),
                  std::to_string(pstats.dense_tiles) + "/" +
                      std::to_string(pstats.sparse_tiles),
                  TablePrinter::Fmt(pstats.TotalSeconds(), 4),
                  TablePrinter::Fmt(seconds, 4),
                  TablePrinter::Fmt(baseline.seconds / seconds, 2) + "x",
                  TablePrinter::FmtBytes(atm.MemoryBytes())});
  }
  table.Print();

  std::printf("\n--- alpha sweep (Eq. 1 & 2 cache budget factor) ---\n");
  TablePrinter alpha_table({"alpha", "b_atomic", "tiles", "atmult[s]",
                            "vs spspsp"});
  for (int alpha : {1, 2, 3, 6, 12}) {
    AtmConfig config = env.config;
    config.alpha = alpha;
    config.beta = alpha;
    ATMatrix atm = PartitionToAtm(coo, config);
    AtMult op(config, env.cost_model);
    const double seconds = MeasureSeconds([&] { op.Multiply(atm, atm); });
    alpha_table.AddRow(
        {std::to_string(alpha), std::to_string(config.AtomicBlockSize()),
         std::to_string(atm.num_tiles()), TablePrinter::Fmt(seconds, 4),
         TablePrinter::Fmt(baseline.seconds / seconds, 2) + "x"});
  }
  alpha_table.Print();
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("ablation_granularity", argc, argv);
  atmx::bench::Run();
  return 0;
}
