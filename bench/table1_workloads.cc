// Reproduces Table I: the workload inventory — dimensions, non-zero
// counts, densities, binary (COO triple) size, and the self-multiplication
// result size — for the real-world surrogates R1-R9 and the R-MAT matrices
// G1-G9, at the configured scale.

#include <cstdio>

#include "bench/bench_common.h"
#include "kernels/sparse_kernels.h"
#include "storage/convert.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Table I: sparse matrices (scaled surrogates) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());
  std::printf(
      "Result size = CSR bytes of C = A*A (computed; the paper reports the "
      "COO result size of the full-scale matrices).\n\n");

  TablePrinter table({"No.", "Name", "Domain", "Dimensions", "Nnz",
                      "rho[%]", "Bin.Size", "ResultNnz", "ResultSize"});
  for (const WorkloadSpec& spec : Table1Specs()) {
    CooMatrix coo = MakeWorkloadMatrix(spec.id, env.scale);
    CsrMatrix csr = CooToCsr(coo);

    std::string result_nnz = "-";
    std::string result_size = "-";
    // The self-product of the two largest hypersparse surrogates is cheap;
    // compute the result for every workload.
    CsrMatrix product = SpGemmCsr(csr, csr);
    result_nnz = std::to_string(product.nnz());
    result_size = TablePrinter::FmtBytes(product.MemoryBytes());

    table.AddRow({spec.id, spec.name, spec.domain,
                  std::to_string(coo.rows()) + " x " +
                      std::to_string(coo.cols()),
                  std::to_string(coo.nnz()),
                  TablePrinter::Fmt(coo.Density() * 100.0, 3),
                  TablePrinter::FmtBytes(coo.TripleBytes()), result_nnz,
                  result_size});
  }
  table.Print();
  std::printf(
      "\nShape check vs. the paper: R1 is the densest (14.8%% full scale), "
      "R7-R9 are hypersparse (<0.05%%), all G matrices share dimension and "
      "nnz but differ in skew.\n");
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("table1_workloads", argc, argv);
  atmx::bench::Run();
  return 0;
}
