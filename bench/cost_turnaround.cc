// Supporting experiment: the density turnaround point rho0_R
// (section II-C3). Sweeps the operand density of a square tile
// self-multiplication and reports measured sparse-kernel vs. dense-kernel
// runtimes alongside the cost model's prediction. The measured crossover
// is the empirical basis of the read threshold (paper default 0.25).

#include <cstdio>

#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "kernels/dense_kernels.h"
#include "kernels/sparse_kernels.h"
#include "storage/convert.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Density turnaround rho0_R (cost-model support) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  const index_t n = 384;
  TablePrinter table({"rho", "spspd[s]", "ddd[s]", "ratio sp/d",
                      "model sp/d", "winner"});
  double measured_crossover = -1.0;
  double previous_ratio = 0.0;
  for (double rho : {0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40,
                     0.50, 0.70}) {
    CooMatrix coo = GenerateUniform(
        n, n, static_cast<index_t>(rho * n * n), 77);
    CsrMatrix sparse = CooToCsr(coo);
    DenseMatrix dense = CooToDense(coo);
    const double actual_rho = sparse.Density();

    DenseMatrix c(n, n);
    const double sparse_seconds = MeasureSeconds([&] {
      c.Fill(0.0);
      SsdGemm(sparse, Window::Full(n, n), sparse, Window::Full(n, n),
              c.MutView(), 0, n);
    });
    const double dense_seconds = MeasureSeconds([&] {
      c.Fill(0.0);
      DddGemm(dense.View(), dense.View(), c.MutView(), 0, n);
    });

    const double ratio = sparse_seconds / dense_seconds;
    MultiplyShape shape{n, n, n, actual_rho, actual_rho, 1.0};
    const double model_ratio =
        env.cost_model.ComputeCost(KernelType::kSSD, shape) /
        env.cost_model.ComputeCost(KernelType::kDDD, shape);
    if (measured_crossover < 0 && ratio >= 1.0 && previous_ratio > 0.0) {
      measured_crossover = actual_rho;
    }
    previous_ratio = ratio;
    table.AddRow({TablePrinter::Fmt(actual_rho, 3),
                  TablePrinter::Fmt(sparse_seconds, 4),
                  TablePrinter::Fmt(dense_seconds, 4),
                  TablePrinter::Fmt(ratio, 2),
                  TablePrinter::Fmt(model_ratio, 2),
                  ratio < 1.0 ? "sparse" : "dense"});
  }
  table.Print();
  std::printf("\nmeasured crossover: %s, cost-model rho0_R: %.3f, "
              "paper configuration: 0.25\n",
              measured_crossover > 0
                  ? TablePrinter::Fmt(measured_crossover, 3).c_str()
                  : "(none in sweep)",
              env.cost_model.ReadTurnaround());
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("cost_turnaround", argc, argv);
  atmx::bench::Run();
  return 0;
}
