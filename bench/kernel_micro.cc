// Google-benchmark microbenchmarks of the eight multiplication kernels
// (section III-A) on cache-sized tiles, including windowed (referenced
// submatrix) variants. These are the kernel-level numbers the cost model
// abstracts; run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "kernels/dense_kernels.h"
#include "kernels/mixed_kernels.h"
#include "kernels/sparse_kernels.h"
#include "storage/convert.h"

namespace atmx {
namespace {

constexpr index_t kTile = 256;
constexpr double kDensity = 0.05;

CsrMatrix ProbeCsr(std::uint64_t seed) {
  return CooToCsr(GenerateUniform(
      kTile, kTile, static_cast<index_t>(kDensity * kTile * kTile), seed));
}

void BM_DddGemm(benchmark::State& state) {
  DenseMatrix a = GenerateFullDense(kTile, kTile, 1);
  DenseMatrix b = GenerateFullDense(kTile, kTile, 2);
  DenseMatrix c(kTile, kTile);
  for (auto _ : state) {
    DddGemm(a.View(), b.View(), c.MutView(), 0, kTile);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * kTile * kTile * kTile);
}
BENCHMARK(BM_DddGemm);

void BM_SddGemm(benchmark::State& state) {
  CsrMatrix a = ProbeCsr(3);
  DenseMatrix b = GenerateFullDense(kTile, kTile, 4);
  DenseMatrix c(kTile, kTile);
  for (auto _ : state) {
    SddGemm(a, Window::Full(kTile, kTile), b.View(), c.MutView(), 0, kTile);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz() * kTile);
}
BENCHMARK(BM_SddGemm);

void BM_DsdGemm(benchmark::State& state) {
  DenseMatrix a = GenerateFullDense(kTile, kTile, 5);
  CsrMatrix b = ProbeCsr(6);
  DenseMatrix c(kTile, kTile);
  for (auto _ : state) {
    DsdGemm(a.View(), b, Window::Full(kTile, kTile), c.MutView(), 0, kTile);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * kTile * b.nnz());
}
BENCHMARK(BM_DsdGemm);

void BM_SsdGemm(benchmark::State& state) {
  CsrMatrix a = ProbeCsr(7);
  CsrMatrix b = ProbeCsr(8);
  DenseMatrix c(kTile, kTile);
  for (auto _ : state) {
    SsdGemm(a, Window::Full(kTile, kTile), b, Window::Full(kTile, kTile),
            c.MutView(), 0, kTile);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SsdGemm);

void BM_SpGemmCsr_sss(benchmark::State& state) {
  CsrMatrix a = ProbeCsr(9);
  CsrMatrix b = ProbeCsr(10);
  for (auto _ : state) {
    CsrMatrix c = SpGemmCsr(a, b);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SpGemmCsr_sss);

void BM_SparseTargetRow_sds(benchmark::State& state) {
  CsrMatrix a = ProbeCsr(11);
  DenseMatrix b = GenerateFullDense(kTile, kTile, 12);
  for (auto _ : state) {
    CsrBuilder builder(kTile, kTile);
    SparseAccumulator spa(kTile);
    for (index_t i = 0; i < kTile; ++i) {
      SdsAccumulateRow(a, Window::Full(kTile, kTile), b.View(), i, &spa);
      spa.FlushToBuilder(&builder);
      builder.FinishRowsUpTo(i + 1);
    }
    CsrMatrix c = builder.Build();
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SparseTargetRow_sds);

void BM_SparseTargetRow_dss(benchmark::State& state) {
  DenseMatrix a = GenerateFullDense(kTile, kTile, 13);
  CsrMatrix b = ProbeCsr(14);
  for (auto _ : state) {
    CsrBuilder builder(kTile, kTile);
    SparseAccumulator spa(kTile);
    for (index_t i = 0; i < kTile; ++i) {
      DssAccumulateRow(a.View(), b, Window::Full(kTile, kTile), i, &spa);
      spa.FlushToBuilder(&builder);
      builder.FinishRowsUpTo(i + 1);
    }
    CsrMatrix c = builder.Build();
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SparseTargetRow_dss);

void BM_SparseTargetRow_dds(benchmark::State& state) {
  DenseMatrix a = GenerateFullDense(kTile, kTile, 15);
  DenseMatrix b = GenerateFullDense(kTile, kTile, 16);
  for (auto _ : state) {
    CsrBuilder builder(kTile, kTile);
    SparseAccumulator spa(kTile);
    for (index_t i = 0; i < kTile; ++i) {
      DdsAccumulateRow(a.View(), b.View(), i, &spa);
      spa.FlushToBuilder(&builder);
      builder.FinishRowsUpTo(i + 1);
    }
    CsrMatrix c = builder.Build();
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SparseTargetRow_dds);

// Windowed vs. full-tile sparse multiplication: the referenced-submatrix
// overhead (binary column searches) the paper accepts in section III-B.
void BM_SsdGemm_Windowed(benchmark::State& state) {
  CsrMatrix a = ProbeCsr(17);
  CsrMatrix b = ProbeCsr(18);
  const Window wa{kTile / 4, 3 * kTile / 4, kTile / 4, 3 * kTile / 4};
  const Window wb{kTile / 4, 3 * kTile / 4, kTile / 4, 3 * kTile / 4};
  DenseMatrix c(kTile / 2, kTile / 2);
  for (auto _ : state) {
    SsdGemm(a, wa, b, wb, c.MutView(), 0, kTile / 2);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SsdGemm_Windowed);

// Conversion kernels used by the JIT optimizer.
void BM_Convert_CsrToDense(benchmark::State& state) {
  CsrMatrix a = ProbeCsr(19);
  for (auto _ : state) {
    DenseMatrix d = CsrToDense(a);
    benchmark::DoNotOptimize(d.data());
  }
}
BENCHMARK(BM_Convert_CsrToDense);

void BM_Convert_DenseToCsr(benchmark::State& state) {
  DenseMatrix a = CsrToDense(ProbeCsr(20));
  for (auto _ : state) {
    CsrMatrix s = DenseToCsr(a);
    benchmark::DoNotOptimize(s.nnz());
  }
}
BENCHMARK(BM_Convert_DenseToCsr);

}  // namespace
}  // namespace atmx

BENCHMARK_MAIN();
