// Reproduces Fig. 9 (a-d): mixed sparse x dense multiplications.
//   9a — C = A * B with A sparse (Table I matrix), B a full dense
//        rectangular matrix with n = gamma * nnz(A) / k, gamma = 3,
//   9b — the mirrored case: A full dense, B sparse,
//   9c/9d — the ATMULT optimization-time breakdown for both cases.
//
// Expected shapes (paper IV-C/IV-D): ATMULT at or above the best plain
// kernel almost everywhere; exceptions mirror the paper — a dense-ish R1
// is served best by pure ddd (ATMULT pays conversions, up to ~7.5% of
// runtime in the dense x sparse case), and hypersparse R7 favours the
// plain mixed kernels because referenced-submatrix slicing adds overhead.

#include <cstdio>

#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "kernels/mixed_kernels.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

constexpr double kGamma = 3.0;

// Plain spdd / dspd baselines on explicit dense operands.
double RunSparseTimesDense(const CsrMatrix& a, const DenseMatrix& b) {
  return MeasureSeconds([&] {
    DenseMatrix c(a.rows(), b.cols());
    SddGemm(a, Window::Full(a.rows(), a.cols()), b.View(), c.MutView(), 0,
            a.rows());
  });
}

double RunDenseTimesSparse(const DenseMatrix& a, const CsrMatrix& b) {
  return MeasureSeconds([&] {
    DenseMatrix c(a.rows(), b.cols());
    DsdGemm(a.View(), b, Window::Full(b.rows(), b.cols()), c.MutView(), 0,
            a.rows());
  });
}

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Fig. 9: mixed sparse x dense multiplication ===\n");
  std::printf("%s\n", env.Describe().c_str());
  std::printf("Dense operand: full (rho = 1), rectangular with "
              "independent dimension gamma*nnz/k, gamma = %.0f.\n\n",
              kGamma);

  TablePrinter fig9a({"Matrix", "atmult_vs_spdd", "atmult_vs_spspd",
                      "spdd[s]", "atmult[s]"});
  TablePrinter fig9b({"Matrix", "atmult_vs_dspd", "dspd[s]", "atmult[s]"});
  TablePrinter fig9c({"Matrix", "est[%]", "opt[%]", "conv"});
  TablePrinter fig9d({"Matrix", "est[%]", "opt[%]", "conv"});

  AtMult op(env.config, env.cost_model);
  for (const WorkloadSpec& spec : Table1Specs()) {
    if (spec.id[0] == 'G') continue;  // Fig. 9 uses R1-R7 (paper: Ri)
    if (spec.id == "R8" || spec.id == "R9") continue;
    CooMatrix coo = MakeWorkloadMatrix(spec.id, env.scale);
    CsrMatrix csr = CooToCsr(coo);
    const index_t k = csr.cols();
    const index_t free_dim = std::max<index_t>(
        8, static_cast<index_t>(kGamma * csr.nnz() / k));

    ATMatrix atm_sparse = PartitionToAtm(coo, env.config);

    // --- 9a: {A: sparse, B: dense}. ------------------------------------
    {
      DenseMatrix b = GenerateFullDense(k, free_dim, 1234);
      const double spdd_seconds = RunSparseTimesDense(csr, b);
      // spspd: B treated sparse (the naive all-CSR route).
      CsrMatrix b_csr = DenseToCsr(b);
      const BaselineResult spspd = RunSpspd(csr, b_csr);

      ATMatrix atm_b = AtmFromDense(b, env.config);
      AtMultStats stats;
      const double atmult_seconds =
          MeasureSeconds([&] { op.Multiply(atm_sparse, atm_b, &stats); });
      fig9a.AddRow({spec.id,
                    TablePrinter::Fmt(spdd_seconds / atmult_seconds, 2) +
                        "x",
                    TablePrinter::Fmt(spspd.seconds / atmult_seconds, 2) +
                        "x",
                    TablePrinter::Fmt(spdd_seconds, 4),
                    TablePrinter::Fmt(atmult_seconds, 4)});
      fig9c.AddRow(
          {spec.id, TablePrinter::Fmt(stats.EstimateFraction() * 100, 3),
           TablePrinter::Fmt(stats.OptimizeFraction() * 100, 3),
           std::to_string(stats.sparse_to_dense_conversions +
                          stats.dense_to_sparse_conversions)});
    }

    // --- 9b: {A: dense, B: sparse}. ------------------------------------
    {
      DenseMatrix a = GenerateFullDense(free_dim, csr.rows(), 4321);
      const double dspd_seconds = RunDenseTimesSparse(a, csr);

      ATMatrix atm_a = AtmFromDense(a, env.config);
      AtMultStats stats;
      const double atmult_seconds =
          MeasureSeconds([&] { op.Multiply(atm_a, atm_sparse, &stats); });
      fig9b.AddRow({spec.id,
                    TablePrinter::Fmt(dspd_seconds / atmult_seconds, 2) +
                        "x",
                    TablePrinter::Fmt(dspd_seconds, 4),
                    TablePrinter::Fmt(atmult_seconds, 4)});
      fig9d.AddRow(
          {spec.id, TablePrinter::Fmt(stats.EstimateFraction() * 100, 3),
           TablePrinter::Fmt(stats.OptimizeFraction() * 100, 3),
           std::to_string(stats.sparse_to_dense_conversions +
                          stats.dense_to_sparse_conversions)});
    }
  }

  // Conversion stress case (section II-C3): a matrix whose tiles sit just
  // below the read threshold is multiplied with a full matrix, so the
  // optimizer converts essentially every tile at runtime. The paper
  // reports a conversion overhead of <= 10% of the total runtime. On this
  // host the calibrated kernel constants may make conversions unprofitable
  // (dense kernels are only mildly cheaper per op than on the paper's
  // machine), so this row deliberately runs under the *paper's* cost model
  // (rho0_R = 0.25) to exercise the conversion path.
  {
    const index_t n = 1024;
    const CostModel paper_model;  // default constants: rho0_R = 0.25
    AtmConfig conv_config = env.config;
    conv_config.rho_read = paper_model.ReadTurnaround();
    conv_config.rho_write = paper_model.WriteTurnaround();
    // Small LLC keeps the near-threshold blocks as separate tiles.
    conv_config.llc_bytes = 256 * 1024;
    const double just_below = conv_config.rho_read * 0.9;
    CooMatrix coo = GenerateDiagonalDenseBlocks(
        n, /*num_blocks=*/4, /*block_size=*/192, just_below,
        /*background_nnz=*/2000, /*seed=*/99);
    CsrMatrix csr = CooToCsr(coo);
    ATMatrix atm = PartitionToAtm(coo, conv_config);
    DenseMatrix b = GenerateFullDense(n, 512, 2024);
    const double spdd_seconds = RunSparseTimesDense(csr, b);
    ATMatrix atm_b = AtmFromDense(b, conv_config);
    AtMult conv_op(conv_config, paper_model);
    AtMultStats stats;
    const double atmult_seconds =
        MeasureSeconds([&] { conv_op.Multiply(atm, atm_b, &stats); });
    fig9a.AddRow({"CONV*",
                  TablePrinter::Fmt(spdd_seconds / atmult_seconds, 2) + "x",
                  "-", TablePrinter::Fmt(spdd_seconds, 4),
                  TablePrinter::Fmt(atmult_seconds, 4)});
    fig9c.AddRow(
        {"CONV*", TablePrinter::Fmt(stats.EstimateFraction() * 100, 3),
         TablePrinter::Fmt(stats.OptimizeFraction() * 100, 3),
         std::to_string(stats.sparse_to_dense_conversions +
                        stats.dense_to_sparse_conversions)});
  }

  std::printf("--- Fig. 9a: {A: sparse, B: dense} speedups ---\n");
  fig9a.Print();
  std::printf("\n--- Fig. 9b: {A: dense, B: sparse} speedups ---\n");
  fig9b.Print();
  std::printf("\n--- Fig. 9c: optimization breakdown for 9a ---\n");
  fig9c.Print();
  std::printf("\n--- Fig. 9d: optimization breakdown for 9b ---\n");
  fig9d.Print();
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("fig9_mixed", argc, argv);
  atmx::bench::Run();
  return 0;
}
