// Supporting experiment for section III-D: accuracy and cost of the
// density-map product estimator across the workload suite. The paper
// relies on the estimate for target representation choices and the
// water-level method; its cost is reported in Figs. 8b/9c/9d as "est".

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "estimate/density_estimator.h"
#include "kernels/sparse_kernels.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Density estimator: accuracy and cost (C = A*A) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  TablePrinter table({"Matrix", "est nnz", "actual nnz", "ratio",
                      "est[ms]", "grid", "mult[s]"});
  for (const WorkloadSpec& spec : Table1Specs()) {
    CooMatrix coo = MakeWorkloadMatrix(spec.id, env.scale);
    CsrMatrix csr = CooToCsr(coo);
    ATMatrix atm = PartitionToAtm(coo, env.config);

    DensityMap estimate;
    const double est_seconds = MeasureSeconds([&] {
      estimate =
          EstimateProductDensity(atm.density_map(), atm.density_map());
    });

    const BaselineResult mult = RunSpspsp(csr, csr);
    CsrMatrix actual = SpGemmCsr(csr, csr);

    const double est_nnz = estimate.ExpectedNnz();
    table.AddRow(
        {spec.id, TablePrinter::Fmt(est_nnz, 0),
         std::to_string(actual.nnz()),
         TablePrinter::Fmt(est_nnz / static_cast<double>(actual.nnz()), 2),
         TablePrinter::Fmt(est_seconds * 1e3, 3),
         std::to_string(estimate.grid_rows()) + "x" +
             std::to_string(estimate.grid_cols()),
         TablePrinter::Fmt(mult.seconds, 4)});
  }
  table.Print();
  std::printf(
      "\nShape check: estimation cost is independent of nnz (it scales "
      "with the density grid), so its share is negligible except for "
      "hypersparse high-dimension matrices (R9-like, paper IV-D). Ratios "
      "near 1 validate the probability-propagation model; block/banded "
      "topologies deviate most (intra-block correlation).\n");
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("estimator_accuracy", argc, argv);
  atmx::bench::Run();
  return 0;
}
