// Extension experiment: the tall-skinny SpMM regime and fused chains.
//
// Workloads of the form A * X with A a big sparse (R-MAT-like) matrix and
// X a dense n x 64 panel are the backbone of iterative solvers and graph
// embeddings. Two claims are measured here:
//
//   1. SpMM panel kernels: ATMULT on A * X routes the sparse x dense
//      row-panel windows (n <= kSpmmMaxPanelCols) to the register-blocked
//      SpMM kernel family (kernels/simd/simd_spmm.cc) and must beat the
//      sequential spspd Gustavson baseline.
//   2. Fused chains: A * (A * X) executed as one tile-granular task DAG
//      with the panel kernels (docs/CHAINS.md) must beat the unfused
//      two-step — the pre-fusion execution model: product-at-a-time with
//      a full-matrix barrier, generic per-non-zero row kernels
//      (SetSpmmPanelEnabled(false)) and panel-blind cost pricing — by
//      >= 1.3x, recorded in the committed baseline
//      (bench/baselines/BENCH_spmm_tall_skinny.json).
//
// Cases: chain.fused / chain.two_step (plus chain.unfused — the fused
// executor switched off but panel kernels kept — to isolate the dataflow
// contribution) and the single-product spmm.atmult / spmm.spspd
// reference points, at three sparse topologies.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gen/synthetic.h"
#include "gen/workloads.h"
#include "kernels/simd/simd_dispatch.h"
#include "ops/chain.h"
#include "ops/chain_exec.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

struct SpmmCase {
  std::string name;
  CooMatrix a;
};

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  BenchReporter::Global().Configure("spmm_tall_skinny", env);
  std::printf("=== Tall-skinny SpMM + fused chain execution ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  const index_t n = static_cast<index_t>(4000 * env.scale / 0.03);
  constexpr index_t kPanelCols = 64;

  std::vector<SpmmCase> cases;
  cases.push_back({"rmat", MakeWorkloadMatrix("G3", env.scale, 21)});
  cases.push_back({"scale-free",
                   GenerateScaleFreeCorrelation(n, n * 16, 0.8, 22)});
  cases.push_back({"uniform", GenerateUniform(n, n, n * 16, 23)});

  TablePrinter table({"topology", "n", "nnz(A)", "spmm[s]", "vs spspd",
                      "fused[s]", "budget[s]", "unfused[s]", "two-step[s]",
                      "fused speedup"});
  for (SpmmCase& c : cases) {
    const index_t rows = c.a.rows();
    CooMatrix x_coo = DenseToCoo(GenerateFullDense(c.a.cols(), kPanelCols,
                                                   24));
    ATMatrix a = PartitionToAtm(c.a, env.config);
    ATMatrix x = PartitionToAtm(x_coo, env.config);

    // 1. Single-product SpMM through ATMULT (panel kernels engaged for
    //    every window: the dense operand is kPanelCols wide).
    AtMult op(env.config, env.cost_model);
    const double t_spmm =
        BenchReporter::Global().MeasureCase(c.name + ".spmm.atmult", [&] {
          op.Multiply(a, x);
        });
    CsrMatrix a_csr = CooToCsr(c.a);
    CsrMatrix x_csr = CooToCsr(x_coo);
    BaselineResult spspd = RunSpspd(a_csr, x_csr);
    BenchReporter::Global().AddSample(c.name + ".spmm.spspd",
                                      spspd.seconds);

    // 2. A * (A * X) — fused dataflow + panel kernels vs the pre-fusion
    //    two-step (product-at-a-time, generic kernels, panel-blind
    //    pricing) vs unfused-but-panel (dataflow ablation).
    std::vector<const ATMatrix*> chain = {&a, &a, &x};
    std::vector<const DensityMap*> maps = {&a.density_map(),
                                           &a.density_map(),
                                           &x.density_map()};
    ChainCostOptions cost_options;
    cost_options.fused = true;
    ChainPlan plan = PlanChain(maps, env.cost_model, env.config.rho_write,
                               cost_options);

    AtmConfig fused_config = env.config;
    fused_config.fused_chains = true;
    AtmConfig unfused_config = env.config;
    unfused_config.fused_chains = false;
    AtMult fused_op(fused_config, env.cost_model);
    AtMult unfused_op(unfused_config, env.cost_model);
    // Panel-blind pricing: the pre-fusion cost model charged the generic
    // sparse-x-dense rate for every window width.
    CostParams two_step_params = env.cost_model.params();
    two_step_params.c_sdd_panel = two_step_params.c_sdd;
    AtMult two_step_op(unfused_config, CostModel(two_step_params));

    // One untimed warm-up per configuration: the first execution pays
    // allocator growth and page faults that would otherwise bias
    // whichever case runs first.
    ExecuteChain(chain, plan, fused_op);
    const double t_fused =
        BenchReporter::Global().MeasureCase(c.name + ".chain.fused", [&] {
          ChainExecStats stats;
          ExecuteChain(chain, plan, fused_op, &stats);
        });
    ExecuteChain(chain, plan, unfused_op);
    const double t_unfused =
        BenchReporter::Global().MeasureCase(c.name + ".chain.unfused", [&] {
          ChainExecStats stats;
          ExecuteChain(chain, plan, unfused_op, &stats);
        });

    // Fused under a finite memory budget: the chain-scope water level +
    // admission gating must keep the chain fused (and faster than the
    // unfused fallback) instead of silently downgrading it. The budget is
    // bracketed between the memory-minimal floor and the unconstrained
    // projection, so it is feasible by construction yet binding when the
    // plan leaves the water level room to move.
    AtmConfig floor_config = fused_config;
    floor_config.result_mem_limit_bytes = 1;
    const internal::ChainBudgetPlan floor_plan = internal::PlanChainBudget(
        chain, plan, AtMult(floor_config, env.cost_model));
    AtmConfig wide_config = fused_config;
    wide_config.result_mem_limit_bytes =
        std::numeric_limits<std::size_t>::max() / 2;
    const internal::ChainBudgetPlan wide_plan = internal::PlanChainBudget(
        chain, plan, AtMult(wide_config, env.cost_model));
    AtmConfig budget_config = fused_config;
    budget_config.result_mem_limit_bytes =
        floor_plan.projected_peak_bytes +
        (wide_plan.projected_peak_bytes - floor_plan.projected_peak_bytes) /
            2;
    AtMult budget_op(budget_config, env.cost_model);
    ExecuteChain(chain, plan, budget_op);
    ChainExecStats budget_stats;
    ExecuteChain(chain, plan, budget_op, &budget_stats);
    const double t_budget = BenchReporter::Global().MeasureCase(
        c.name + ".chain.fused_budget", [&] {
          ChainExecStats stats;
          ExecuteChain(chain, plan, budget_op, &stats);
        });
    simd::SetSpmmPanelEnabled(false);
    ExecuteChain(chain, plan, two_step_op);
    const double t_two_step =
        BenchReporter::Global().MeasureCase(c.name + ".chain.two_step", [&] {
          ChainExecStats stats;
          ExecuteChain(chain, plan, two_step_op, &stats);
        });
    simd::SetSpmmPanelEnabled(true);

    table.AddRow({c.name, std::to_string(rows),
                  std::to_string(c.a.nnz()), TablePrinter::Fmt(t_spmm, 4),
                  FmtSpeedup(spspd, t_spmm), TablePrinter::Fmt(t_fused, 4),
                  TablePrinter::Fmt(t_budget, 4) +
                      (budget_stats.fused ? "" : "(unfused!)"),
                  TablePrinter::Fmt(t_unfused, 4),
                  TablePrinter::Fmt(t_two_step, 4),
                  TablePrinter::Fmt(t_two_step / std::max(t_fused, 1e-12),
                                    2) +
                      "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("spmm_tall_skinny", argc, argv);
  atmx::bench::Run();
  return 0;
}
