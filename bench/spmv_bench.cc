// Supporting experiment: sparse matrix-vector multiplication over the
// workload suite. The paper's choice of CSR for sparse tiles rests on
// Vuduc's observation [13] that CSR spmv performs best across matrix
// classes; this bench checks that the heterogeneous AT MATRIX spmv stays
// competitive with plain CSR (dense tiles run the dense inner kernel).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "ops/spmv.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  BenchReporter::Global().Configure("spmv_bench", env);
  std::printf("=== SpMV: plain CSR vs AT MATRIX (supporting) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  TablePrinter table({"Matrix", "csr[ms]", "atm[ms]", "atm/csr",
                      "tiles(d/sp)"});
  for (const WorkloadSpec& spec : Table1Specs()) {
    CooMatrix coo = MakeWorkloadMatrix(spec.id, env.scale);
    CsrMatrix csr = CooToCsr(coo);
    ATMatrix atm = PartitionToAtm(coo, env.config);

    Rng rng(31);
    std::vector<value_t> x(csr.cols());
    for (auto& v : x) v = rng.NextDouble() - 0.5;

    const double csr_seconds =
        BenchReporter::Global().MeasureCase(spec.id + ".csr", [&] {
          std::vector<value_t> y = SpMV(csr, x);
          (void)y;
        });
    const double atm_seconds =
        BenchReporter::Global().MeasureCase(spec.id + ".atm", [&] {
          std::vector<value_t> y = SpMV(atm, x);
          (void)y;
        });
    table.AddRow(
        {spec.id, TablePrinter::Fmt(csr_seconds * 1e3, 3),
         TablePrinter::Fmt(atm_seconds * 1e3, 3),
         TablePrinter::Fmt(atm_seconds / csr_seconds, 2),
         std::to_string(atm.NumDenseTiles()) + "/" +
             std::to_string(atm.NumSparseTiles())});
  }
  table.Print();
  std::printf(
      "\nShape check: the tiled spmv stays within a small factor of plain "
      "CSR (tile boundaries add per-tile loop overhead, dense tiles gain "
      "streaming access), consistent with the paper's reliance on CSR as "
      "the sparse-tile format for vector kernels.\n");
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("spmv_bench", argc, argv);
  atmx::bench::Run();
  return 0;
}
