// Telemetry-overhead micro-bench: what the live observability layer costs
// the process being observed. Cases (reported via --bench-out, gated in CI
// against bench/baselines/BENCH_telemetry_bench.json):
//
//   counter_hot_loop_unsampled  relaxed Counter::Increment loop, sampler off
//   counter_hot_loop_sampled    same loop with the windowed-rate sampler
//                               ticking every 5 ms — the headline number:
//                               sampling must not tax instrumented hot paths
//   registry_snapshot           MetricsRegistry::Snapshot of a realistic
//                               registry shape (counters+gauges+histogram)
//   render_openmetrics          OpenMetrics text rendering of that snapshot
//   handle_metrics_request      full GET /metrics request -> response

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "obs/obs.h"
#if defined(ATMX_OBS_ENABLED)
#include <chrono>

#include "obs/exposition.h"
#include "obs/snapshot_ring.h"
#include "obs/stats_server.h"
#endif

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("telemetry_bench", argc, argv);
#if !defined(ATMX_OBS_ENABLED)
  std::printf(
      "telemetry_bench: built with -DATMX_OBS=OFF, nothing to measure\n");
  return 0;
#else
  atmx::bench::BenchEnv env = atmx::bench::BenchEnv::FromEnvironment();
  atmx::bench::BenchReporter::Global().Configure("telemetry_bench", env);
  atmx::bench::BenchReporter& reporter = atmx::bench::BenchReporter::Global();
  std::printf("=== Telemetry overhead ===\n%s\n\n", env.Describe().c_str());

  atmx::obs::MetricsRegistry& registry =
      atmx::obs::MetricsRegistry::Global();
  // A realistic registry shape, so snapshot/render costs are not measured
  // on a near-empty map.
  for (int i = 0; i < 32; ++i) {
    registry.GetCounter("telemetry_bench.counter." + std::to_string(i))
        .Add(static_cast<std::uint64_t>(i));
    registry.GetGauge("telemetry_bench.gauge." + std::to_string(i))
        .Set(i * 0.5);
  }
  atmx::obs::Histogram& hist = registry.GetHistogram("telemetry_bench.hist");
  for (int i = 0; i < 1000; ++i) hist.Observe(i * 1e-4);

  constexpr int kOps = 1 << 24;
  atmx::obs::Counter& hot = registry.GetCounter("telemetry_bench.hot");
  const auto hot_loop = [&] {
    for (int i = 0; i < kOps; ++i) hot.Increment();
  };

  const double unsampled =
      reporter.MeasureCase("counter_hot_loop_unsampled", hot_loop);

  atmx::obs::SnapshotSampler sampler;
  atmx::obs::SnapshotSampler::Options sampler_options;
  sampler_options.period = std::chrono::milliseconds(5);
  atmx::Status status = sampler.Start(sampler_options);
  if (!status.ok()) {
    std::fprintf(stderr, "telemetry_bench: %s\n", status.ToString().c_str());
    return 1;
  }
  const double sampled =
      reporter.MeasureCase("counter_hot_loop_sampled", hot_loop);
  sampler.Stop();

  const double snapshot_seconds =
      reporter.MeasureCase("registry_snapshot", [&] {
        for (int i = 0; i < 100; ++i) {
          const auto samples = registry.Snapshot();
          (void)samples;
        }
      });
  const auto samples = registry.Snapshot();
  const double render_seconds =
      reporter.MeasureCase("render_openmetrics", [&] {
        for (int i = 0; i < 100; ++i) {
          const std::string text = atmx::obs::RenderOpenMetrics(samples);
          (void)text;
        }
      });
  const double handle_seconds =
      reporter.MeasureCase("handle_metrics_request", [&] {
        for (int i = 0; i < 100; ++i) {
          const std::string response = atmx::obs::StatsServer::HandleRequest(
              "GET /metrics HTTP/1.0\r\n\r\n", registry);
          (void)response;
        }
      });

  std::printf("counter increment, sampler off : %8.3f ns/op\n",
              unsampled / kOps * 1e9);
  std::printf("counter increment, sampler 5ms : %8.3f ns/op  (%+.1f%%)\n",
              sampled / kOps * 1e9,
              unsampled > 0.0 ? 100.0 * (sampled / unsampled - 1.0) : 0.0);
  std::printf("registry snapshot              : %8.3f us\n",
              snapshot_seconds / 100 * 1e6);
  std::printf("render /metrics (OpenMetrics)  : %8.3f us\n",
              render_seconds / 100 * 1e6);
  std::printf("serve  /metrics (request path) : %8.3f us\n",
              handle_seconds / 100 * 1e6);
  std::printf(
      "\nShape check: the sampled hot loop should run within noise of the "
      "unsampled one — the sampler's per-tick cost is a registry snapshot "
      "on its own thread, never a tax on update paths.\n");
  std::printf("sampler ticks during the timed window: %llu\n",
              static_cast<unsigned long long>(sampler.ticks()));
  return 0;
#endif
}
