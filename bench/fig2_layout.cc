// Reproduces Fig. 2: the AT MATRIX layout of the TSOPF (R3) matrix at a
// coarse and a fine granularity, plus the estimated and the actual density
// map of the self-multiplication result. ASCII renderings are printed;
// PGM images (one pixel per atomic block, dense tiles hatched) are written
// next to the binary.

#include <cstdio>

#include "bench/bench_common.h"
#include "estimate/density_estimator.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"
#include "viz/render.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Fig. 2: AT MATRIX layout of R3 (TSOPF surrogate) ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  CooMatrix coo = MakeWorkloadMatrix("R3", env.scale);

  // Coarse granularity (paper: k = 6 -> few big blocks) vs. fine
  // granularity (k = 10): we scale both k values with the workload.
  AtmConfig coarse = env.config;
  coarse.b_atomic = env.config.AtomicBlockSize() * 4;
  AtmConfig fine = env.config;

  PartitionStats coarse_stats, fine_stats;
  ATMatrix atm_coarse = PartitionToAtm(coo, coarse, &coarse_stats);
  ATMatrix atm_fine = PartitionToAtm(coo, fine, &fine_stats);

  std::printf("--- (2a) coarse granularity b_atomic=%lld: %lld tiles "
              "(%lld dense / %lld sparse) ---\n",
              static_cast<long long>(coarse.AtomicBlockSize()),
              static_cast<long long>(atm_coarse.num_tiles()),
              static_cast<long long>(atm_coarse.NumDenseTiles()),
              static_cast<long long>(atm_coarse.NumSparseTiles()));
  std::printf("%s\n", RenderTileLayoutAscii(atm_coarse, 48).c_str());

  std::printf("--- (2b) fine granularity b_atomic=%lld: %lld tiles "
              "(%lld dense / %lld sparse) ---\n",
              static_cast<long long>(fine.AtomicBlockSize()),
              static_cast<long long>(atm_fine.num_tiles()),
              static_cast<long long>(atm_fine.NumDenseTiles()),
              static_cast<long long>(atm_fine.NumSparseTiles()));
  std::printf("%s\n", RenderTileLayoutAscii(atm_fine, 48).c_str());

  // (2c) estimated result density vs. (2d) actual result density.
  DensityMap estimated =
      EstimateProductDensity(atm_fine.density_map(), atm_fine.density_map());
  std::printf("--- (2c) estimated C = A*A density map ---\n%s\n",
              RenderDensityMapAscii(estimated, 48).c_str());

  AtMult op(env.config, env.cost_model);
  ATMatrix c = op.Multiply(atm_fine, atm_fine);
  std::printf("--- (2d) actual C = A*A density map ---\n%s\n",
              RenderDensityMapAscii(c.density_map(), 48).c_str());

  std::printf("estimated result nnz: %.0f, actual: %lld (ratio %.2f)\n",
              estimated.ExpectedNnz(), static_cast<long long>(c.nnz()),
              estimated.ExpectedNnz() / static_cast<double>(c.nnz()));

  for (const auto& [atm, name] :
       {std::pair<const ATMatrix*, const char*>{&atm_coarse,
                                                "fig2a_coarse.pgm"},
        {&atm_fine, "fig2b_fine.pgm"},
        {&c, "fig2d_result.pgm"}}) {
    Status status = WriteTileLayoutPgm(*atm, name);
    std::printf("wrote %s: %s\n", name, status.ToString().c_str());
  }
  Status status = WriteDensityMapPgm(estimated, "fig2c_estimate.pgm");
  std::printf("wrote fig2c_estimate.pgm: %s\n", status.ToString().c_str());
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("fig2_layout", argc, argv);
  atmx::bench::Run();
  return 0;
}
