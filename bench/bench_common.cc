#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/timer.h"
#include "obs/obs.h"
#include "cost/calibration.h"
#include "kernels/sparse_kernels.h"
#include "kernels/dense_kernels.h"
#include "kernels/mixed_kernels.h"
#include "storage/convert.h"

namespace atmx::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

long long EnvInt(const char* name, long long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

#if defined(ATMX_OBS_ENABLED)
// Written by EnableTracingTo, read by the atexit hook.
std::string* TraceOutPath() {
  static std::string* path = new std::string();
  return path;
}

void FlushTraceAtExit() {
  const std::string& path = *TraceOutPath();
  if (path.empty()) return;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  Status status = recorder.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "trace: wrote %s (%lld events, %llu dropped)\n",
               path.c_str(), (long long)recorder.EventCount(),
               (unsigned long long)recorder.DroppedEvents());
}
#endif  // ATMX_OBS_ENABLED

}  // namespace

void EnableTracingTo(const std::string& path) {
#if defined(ATMX_OBS_ENABLED)
  static bool registered = false;
  *TraceOutPath() = path;
  obs::TraceRecorder::Global().Enable();
  obs::DecisionLog::Global().SetEnabled(true);
  if (!registered) {
    registered = true;
    std::atexit(FlushTraceAtExit);
  }
#else
  std::fprintf(stderr,
               "trace: ignoring %s — built with -DATMX_OBS=OFF\n",
               path.c_str());
#endif
}

void MaybeEnableTracing(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    static constexpr char kFlag[] = "--trace-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      EnableTracingTo(argv[i] + sizeof(kFlag) - 1);
      return;
    }
  }
  if (const char* path = std::getenv("ATMX_TRACE_OUT")) {
    if (path[0] != '\0') EnableTracingTo(path);
  }
}

BenchEnv BenchEnv::FromEnvironment() {
  BenchEnv env;
  env.scale = EnvDouble("ATMX_SCALE", 0.03);
  env.config.llc_bytes = EnvInt("ATMX_LLC", 1 << 20);
  env.config.num_sockets = static_cast<int>(EnvInt("ATMX_TEAMS", 1));
  env.config.cores_per_socket =
      static_cast<int>(EnvInt("ATMX_THREADS", 1));
  if (EnvInt("ATMX_CALIBRATE", 1) != 0) {
    // Fit the cost-model constants to this host and derive the density
    // thresholds from the fitted model — the paper's rho0_R = 0.25 is the
    // turnaround of *its* machine; rho0_R is explicitly a system-dependent
    // tuning parameter (sections II-C3, III-C).
    env.cost_model = CostModel(Calibrate());
    env.config.rho_read =
        std::clamp(env.cost_model.ReadTurnaround(), 0.10, 0.85);
    env.config.rho_write =
        std::clamp(env.cost_model.WriteTurnaround(), 0.005, 0.20);
  }
  if (const char* path = std::getenv("ATMX_TRACE_OUT")) {
    if (path[0] != '\0') EnableTracingTo(path);
  }
  return env;
}

std::string BenchEnv::Describe() const {
  std::ostringstream os;
  os << "scale=" << scale << " (of Table I sizes), b_atomic="
     << config.AtomicBlockSize() << ", llc=" << config.llc_bytes
     << "B, rho_read=" << config.rho_read
     << ", rho_write=" << config.rho_write
     << ", teams=" << config.EffectiveTeams() << "x"
     << config.EffectiveThreadsPerTeam() << " threads"
     << ", rho0_R(model)=" << cost_model.ReadTurnaround();
  return os.str();
}

double MeasureSeconds(const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  double t0 = timer.ElapsedSeconds();
  if (t0 >= 0.05) return t0;
  // Short measurement: take the median of three runs.
  timer.Restart();
  fn();
  double t1 = timer.ElapsedSeconds();
  timer.Restart();
  fn();
  double t2 = timer.ElapsedSeconds();
  double lo = std::min({t0, t1, t2});
  double hi = std::max({t0, t1, t2});
  return t0 + t1 + t2 - lo - hi;
}

BaselineResult RunSpspsp(const CsrMatrix& a, const CsrMatrix& b) {
  BaselineResult result;
  std::size_t bytes = 0;
  result.seconds = MeasureSeconds([&] {
    CsrMatrix c = SpGemmCsr(a, b);
    bytes = c.MemoryBytes();
  });
  result.result_bytes = bytes;
  result.ran = true;
  return result;
}

BaselineResult RunSpspd(const CsrMatrix& a, const CsrMatrix& b) {
  BaselineResult result;
  std::size_t bytes = 0;
  result.seconds = MeasureSeconds([&] {
    DenseMatrix c = SpGemmDense(a, b);
    bytes = c.MemoryBytes();
  });
  result.result_bytes = bytes;
  result.ran = true;
  return result;
}

BaselineResult RunSpdd(const CsrMatrix& a, const CsrMatrix& b,
                       index_t max_dense_dim) {
  BaselineResult result;
  if (std::max({b.rows(), b.cols(), a.rows()}) > max_dense_dim) {
    return result;  // densification infeasible at this size
  }
  DenseMatrix b_dense = CsrToDense(b);
  std::size_t bytes = 0;
  result.seconds = MeasureSeconds([&] {
    DenseMatrix c(a.rows(), b.cols());
    SddGemm(a, Window::Full(a.rows(), a.cols()), b_dense.View(),
            c.MutView(), 0, a.rows());
    bytes = c.MemoryBytes();
  });
  result.result_bytes = bytes;
  result.ran = true;
  return result;
}

BaselineResult RunDdd(const CsrMatrix& a, const CsrMatrix& b,
                      index_t max_dense_dim) {
  BaselineResult result;
  if (std::max({a.rows(), a.cols(), b.cols()}) > max_dense_dim) {
    return result;
  }
  DenseMatrix a_dense = CsrToDense(a);
  DenseMatrix b_dense = CsrToDense(b);
  std::size_t bytes = 0;
  result.seconds = MeasureSeconds([&] {
    DenseMatrix c(a.rows(), b.cols());
    DddGemm(a_dense.View(), b_dense.View(), c.MutView(), 0, a.rows());
    bytes = c.MemoryBytes();
  });
  result.result_bytes = bytes;
  result.ran = true;
  return result;
}

std::string FmtSpeedup(const BaselineResult& baseline,
                       double atmult_seconds) {
  if (!baseline.ran || atmult_seconds <= 0.0) return "-";
  return TablePrinter::Fmt(baseline.seconds / atmult_seconds, 2) + "x";
}

std::string FmtRel(const BaselineResult& baseline,
                   const BaselineResult& reference) {
  if (!baseline.ran || !reference.ran || baseline.seconds <= 0.0) return "-";
  return TablePrinter::Fmt(reference.seconds / baseline.seconds, 2) + "x";
}

}  // namespace atmx::bench
