#include "bench/bench_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <sstream>
#include <thread>

#include "common/timer.h"
#include "obs/obs.h"
#if defined(ATMX_OBS_ENABLED)
#include "obs/audit_ledger.h"
#include "obs/flight_recorder.h"
#include "obs/snapshot_ring.h"
#include "obs/stats_server.h"
#endif
#include "cost/calibration.h"
#include "kernels/sparse_kernels.h"
#include "kernels/dense_kernels.h"
#include "kernels/mixed_kernels.h"
#include "storage/convert.h"

namespace atmx::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

long long EnvInt(const char* name, long long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

#if defined(ATMX_OBS_ENABLED)
// Written by EnableTracingTo, read by the atexit hook.
std::string* TraceOutPath() {
  static std::string* path = new std::string();
  return path;
}

void FlushTraceAtExit() {
  const std::string& path = *TraceOutPath();
  if (path.empty()) return;
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  Status status = recorder.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "trace: wrote %s (%lld events, %llu dropped)\n",
               path.c_str(), (long long)recorder.EventCount(),
               (unsigned long long)recorder.DroppedEvents());
}

// Written by EnableAuditOutputTo for the atexit flush message.
std::string* AuditOutPath() {
  static std::string* path = new std::string();
  return path;
}

void FlushAuditAtExit() {
  const std::string& path = *AuditOutPath();
  if (path.empty()) return;
  Status status = obs::AuditLedger::Global().FlushArmed();
  if (!status.ok()) {
    std::fprintf(stderr, "audit: %s\n", status.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "audit: wrote %s\n", path.c_str());
}
#endif  // ATMX_OBS_ENABLED

}  // namespace

void EnableTracingTo(const std::string& path) {
#if defined(ATMX_OBS_ENABLED)
  static bool registered = false;
  *TraceOutPath() = path;
  obs::TraceRecorder::Global().Enable();
  obs::DecisionLog::Global().SetEnabled(true);
  if (!registered) {
    registered = true;
    std::atexit(FlushTraceAtExit);
  }
#else
  std::fprintf(stderr,
               "trace: ignoring %s — built with -DATMX_OBS=OFF\n",
               path.c_str());
#endif
}

void MaybeEnableTracing(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    static constexpr char kFlag[] = "--trace-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      EnableTracingTo(argv[i] + sizeof(kFlag) - 1);
      return;
    }
  }
  if (const char* path = std::getenv("ATMX_TRACE_OUT")) {
    if (path[0] != '\0') EnableTracingTo(path);
  }
}

void EnableAuditOutputTo(const std::string& path) {
#if defined(ATMX_OBS_ENABLED)
  static bool registered = false;
  *AuditOutPath() = path;
  obs::AuditLedger::Global().ArmOutput(path);
  if (!registered) {
    registered = true;
    std::atexit(FlushAuditAtExit);
  }
#else
  std::fprintf(stderr,
               "audit: ignoring %s — built with -DATMX_OBS=OFF\n",
               path.c_str());
#endif
}

void MaybeEnableAuditOut(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    static constexpr char kFlag[] = "--audit-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      EnableAuditOutputTo(argv[i] + sizeof(kFlag) - 1);
      return;
    }
  }
  if (const char* path = std::getenv("ATMX_AUDIT_OUT")) {
    if (path[0] != '\0') EnableAuditOutputTo(path);
  }
}

#if defined(ATMX_OBS_ENABLED)

namespace {

// Set by MaybeStartStatsServer, read by the atexit hook.
int* StatsLingerSeconds() {
  static int* seconds = new int(0);
  return seconds;
}

void StopStatsAtExit() {
  const int linger = *StatsLingerSeconds();
  if (linger > 0) {
    std::fprintf(stderr, "stats: lingering %d s before shutdown\n", linger);
    std::this_thread::sleep_for(std::chrono::seconds(linger));
  }
  obs::SnapshotSampler::Global().Stop();
  obs::StatsServer::Global().Stop();
}

}  // namespace

#endif  // ATMX_OBS_ENABLED

void MaybeStartStatsServer(int argc, char** argv) {
  int port = -1;  // -1 = not requested
  static constexpr char kFlag[] = "--stats-port=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      port = std::atoi(argv[i] + sizeof(kFlag) - 1);
    }
  }
  if (port < 0) {
    if (const char* env = std::getenv("ATMX_STATS_PORT")) {
      if (env[0] != '\0') port = std::atoi(env);
    }
  }
  const bool flight = EnvInt("ATMX_FLIGHT", port >= 0 ? 1 : 0) != 0;
  if (port < 0 && !flight) return;
#if defined(ATMX_OBS_ENABLED)
  if (flight) {
    Status status = obs::FlightRecorder::Global().Install();
    if (!status.ok()) {
      std::fprintf(stderr, "stats: flight recorder: %s\n",
                   status.ToString().c_str());
    }
  }
  if (port < 0) return;
  obs::StatsServer::Options server_options;
  server_options.port = port;
  Status status = obs::StatsServer::Global().Start(server_options);
  if (!status.ok()) {
    std::fprintf(stderr, "stats: %s\n", status.ToString().c_str());
    return;
  }
  obs::SnapshotSampler::Options sampler_options;
  sampler_options.period =
      std::chrono::milliseconds(EnvInt("ATMX_STATS_PERIOD_MS", 250));
  status = obs::SnapshotSampler::Global().Start(sampler_options);
  if (!status.ok()) {
    std::fprintf(stderr, "stats: sampler: %s\n", status.ToString().c_str());
  }
  *StatsLingerSeconds() =
      static_cast<int>(EnvInt("ATMX_STATS_LINGER", 0));
  std::atexit(StopStatsAtExit);
  // CI scrapers parse this line for the ephemeral port; keep the format
  // stable and flush so it is visible before the bench body starts.
  std::fprintf(stderr, "stats: serving http://127.0.0.1:%d/metrics\n",
               obs::StatsServer::Global().port());
  std::fflush(stderr);
#else
  std::fprintf(
      stderr,
      "stats: ignoring stats/flight request — built with -DATMX_OBS=OFF\n");
#endif
}

void InitBenchTelemetry(const std::string& bench_name, int argc,
                        char** argv) {
  MaybeEnableTracing(argc, argv);
  MaybeEnableBenchReport(bench_name, argc, argv);
  MaybeEnableAuditOut(argc, argv);
  MaybeStartStatsServer(argc, argv);
}

BenchEnv BenchEnv::FromEnvironment() {
  BenchEnv env;
  env.scale = EnvDouble("ATMX_SCALE", 0.03);
  env.config.llc_bytes = EnvInt("ATMX_LLC", 1 << 20);
  env.config.num_sockets = static_cast<int>(EnvInt("ATMX_TEAMS", 1));
  env.config.cores_per_socket =
      static_cast<int>(EnvInt("ATMX_THREADS", 1));
  if (EnvInt("ATMX_CALIBRATE", 1) != 0) {
    // Fit the cost-model constants to this host and derive the density
    // thresholds from the fitted model — the paper's rho0_R = 0.25 is the
    // turnaround of *its* machine; rho0_R is explicitly a system-dependent
    // tuning parameter (sections II-C3, III-C).
    env.cost_model = CostModel(Calibrate());
    env.config.rho_read =
        std::clamp(env.cost_model.ReadTurnaround(), 0.10, 0.85);
    env.config.rho_write =
        std::clamp(env.cost_model.WriteTurnaround(), 0.005, 0.20);
  }
  if (const char* path = std::getenv("ATMX_TRACE_OUT")) {
    if (path[0] != '\0') EnableTracingTo(path);
  }
  return env;
}

std::string BenchEnv::Describe() const {
  std::ostringstream os;
  os << "scale=" << scale << " (of Table I sizes), b_atomic="
     << config.AtomicBlockSize() << ", llc=" << config.llc_bytes
     << "B, rho_read=" << config.rho_read
     << ", rho_write=" << config.rho_write
     << ", teams=" << config.EffectiveTeams() << "x"
     << config.EffectiveThreadsPerTeam() << " threads"
     << ", rho0_R(model)=" << cost_model.ReadTurnaround();
  return os.str();
}

double MeasureSeconds(const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  double t0 = timer.ElapsedSeconds();
  if (t0 >= 0.05) return t0;
  // Short measurement: take the median of three runs.
  timer.Restart();
  fn();
  double t1 = timer.ElapsedSeconds();
  timer.Restart();
  fn();
  double t2 = timer.ElapsedSeconds();
  double lo = std::min({t0, t1, t2});
  double hi = std::max({t0, t1, t2});
  return t0 + t1 + t2 - lo - hi;
}

BaselineResult RunSpspsp(const CsrMatrix& a, const CsrMatrix& b) {
  BaselineResult result;
  std::size_t bytes = 0;
  result.seconds = MeasureSeconds([&] {
    CsrMatrix c = SpGemmCsr(a, b);
    bytes = c.MemoryBytes();
  });
  result.result_bytes = bytes;
  result.ran = true;
  return result;
}

BaselineResult RunSpspd(const CsrMatrix& a, const CsrMatrix& b) {
  BaselineResult result;
  std::size_t bytes = 0;
  result.seconds = MeasureSeconds([&] {
    DenseMatrix c = SpGemmDense(a, b);
    bytes = c.MemoryBytes();
  });
  result.result_bytes = bytes;
  result.ran = true;
  return result;
}

BaselineResult RunSpdd(const CsrMatrix& a, const CsrMatrix& b,
                       index_t max_dense_dim) {
  BaselineResult result;
  if (std::max({b.rows(), b.cols(), a.rows()}) > max_dense_dim) {
    return result;  // densification infeasible at this size
  }
  DenseMatrix b_dense = CsrToDense(b);
  std::size_t bytes = 0;
  result.seconds = MeasureSeconds([&] {
    DenseMatrix c(a.rows(), b.cols());
    SddGemm(a, Window::Full(a.rows(), a.cols()), b_dense.View(),
            c.MutView(), 0, a.rows());
    bytes = c.MemoryBytes();
  });
  result.result_bytes = bytes;
  result.ran = true;
  return result;
}

BaselineResult RunDdd(const CsrMatrix& a, const CsrMatrix& b,
                      index_t max_dense_dim) {
  BaselineResult result;
  if (std::max({a.rows(), a.cols(), b.cols()}) > max_dense_dim) {
    return result;
  }
  DenseMatrix a_dense = CsrToDense(a);
  DenseMatrix b_dense = CsrToDense(b);
  std::size_t bytes = 0;
  result.seconds = MeasureSeconds([&] {
    DenseMatrix c(a.rows(), b.cols());
    DddGemm(a_dense.View(), b_dense.View(), c.MutView(), 0, a.rows());
    bytes = c.MemoryBytes();
  });
  result.result_bytes = bytes;
  result.ran = true;
  return result;
}

std::string FmtSpeedup(const BaselineResult& baseline,
                       double atmult_seconds) {
  if (!baseline.ran || atmult_seconds <= 0.0) return "-";
  return TablePrinter::Fmt(baseline.seconds / atmult_seconds, 2) + "x";
}

std::string FmtRel(const BaselineResult& baseline,
                   const BaselineResult& reference) {
  if (!baseline.ran || !reference.ran || baseline.seconds <= 0.0) return "-";
  return TablePrinter::Fmt(reference.seconds / baseline.seconds, 2) + "x";
}

namespace {

// Local escaper so the report works under -DATMX_OBS=OFF (the obs JSON
// helpers are not compiled there).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Counter key names, index-aligned with the PerfCounterId slots (and with
// the trace-arg keys check_trace.py validates).
constexpr const char* kBenchCounterNames[6] = {
    "cycles",      "instructions", "llc_loads",
    "llc_misses",  "dtlb_misses",  "task_clock_ns"};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void FlushBenchReportAtExit() {
  BenchReporter& reporter = BenchReporter::Global();
  if (!reporter.armed()) return;
  // Re-query the path through ToJson/WriteJson: the reporter keeps it.
  reporter.WriteJson("");  // "" = use the armed path
}

}  // namespace

BenchReporter& BenchReporter::Global() {
  static BenchReporter* reporter = new BenchReporter();
  return *reporter;
}

void BenchReporter::Configure(const std::string& bench_name,
                              const BenchEnv& env) {
  bench_name_ = bench_name;
  scale_ = env.scale;
  llc_bytes_ = env.config.llc_bytes;
  b_atomic_ = env.config.AtomicBlockSize();
  teams_ = env.config.EffectiveTeams();
  threads_ = env.config.EffectiveThreadsPerTeam();
  rho_read_ = env.config.rho_read;
  rho_write_ = env.config.rho_write;
  configured_ = true;
}

void BenchReporter::ArmOutput(const std::string& path) {
  static bool registered = false;
  out_path_ = path;
  if (!registered) {
    registered = true;
    std::atexit(FlushBenchReportAtExit);
  }
}

BenchReporter::Case* BenchReporter::FindOrAddCase(const std::string& name) {
  for (Case& c : cases_) {
    if (c.name == name) return &c;
  }
  cases_.push_back(Case{});
  cases_.back().name = name;
  return &cases_.back();
}

double BenchReporter::MeasureCase(const std::string& name,
                                  const std::function<void()>& fn) {
  if (!armed()) return MeasureSeconds(fn);
  Case* c = FindOrAddCase(name);
#if defined(ATMX_OBS_ENABLED)
  const obs::PerfSnapshot begin = obs::PerfBeginSnapshot();
#endif
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repetitions_));
  for (int rep = 0; rep < repetitions_; ++rep) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
#if defined(ATMX_OBS_ENABLED)
  const obs::PerfDelta delta = obs::PerfDeltaSince(begin);
  if (delta.valid && delta.present != 0) {
    c->has_counters = true;
    c->counters_present |= delta.present;
    for (int i = 0; i < obs::kNumPerfCounters; ++i) {
      c->counters[i] += delta.value[static_cast<std::size_t>(i)];
    }
  }
#endif
  for (double s : samples) c->samples.push_back(s);
  std::sort(samples.begin(), samples.end());
  return Percentile(samples, 0.5);
}

void BenchReporter::AddSample(const std::string& name, double seconds) {
  if (!armed()) return;
  FindOrAddCase(name)->samples.push_back(seconds);
}

std::string BenchReporter::ToJson() const {
  std::ostringstream os;
  const char* sha = std::getenv("ATMX_GIT_SHA");
  os << "{\"schema_version\":1,\"bench\":\"" << JsonEscape(bench_name_)
     << "\",\"git_sha\":\""
     << JsonEscape(sha != nullptr && sha[0] != '\0' ? sha : "unknown")
     << "\",\"unix_time\":" << static_cast<long long>(std::time(nullptr));
  os << ",\"config\":{\"scale\":" << JsonDouble(scale_)
     << ",\"llc_bytes\":" << llc_bytes_ << ",\"b_atomic\":" << b_atomic_
     << ",\"teams\":" << teams_ << ",\"threads\":" << threads_
     << ",\"rho_read\":" << JsonDouble(rho_read_)
     << ",\"rho_write\":" << JsonDouble(rho_write_);
#if defined(ATMX_OBS_ENABLED)
  os << ",\"obs_enabled\":1,\"perf_counters\":"
     << (obs::PerfCountersAvailable() ? 1 : 0);
#else
  os << ",\"obs_enabled\":0,\"perf_counters\":0";
#endif
  os << "},\"cases\":[";
  bool first_case = true;
  for (const Case& c : cases_) {
    if (!first_case) os << ",";
    first_case = false;
    std::vector<double> sorted = c.samples;
    std::sort(sorted.begin(), sorted.end());
    os << "{\"name\":\"" << JsonEscape(c.name)
       << "\",\"repetitions\":" << c.samples.size() << ",\"wall_seconds\":{"
       << "\"min\":" << JsonDouble(sorted.empty() ? 0.0 : sorted.front())
       << ",\"median\":" << JsonDouble(Percentile(sorted, 0.5))
       << ",\"p95\":" << JsonDouble(Percentile(sorted, 0.95))
       << ",\"max\":" << JsonDouble(sorted.empty() ? 0.0 : sorted.back())
       << ",\"samples\":[";
    for (std::size_t i = 0; i < c.samples.size(); ++i) {
      if (i > 0) os << ",";
      os << JsonDouble(c.samples[i]);
    }
    os << "]}";
    if (c.has_counters) {
      os << ",\"counters\":{";
      bool first_counter = true;
      for (int i = 0; i < 6; ++i) {
        if ((c.counters_present & (1u << i)) == 0) continue;
        if (!first_counter) os << ",";
        first_counter = false;
        os << "\"" << kBenchCounterNames[i] << "\":" << c.counters[i];
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

bool BenchReporter::WriteJson(const std::string& path) const {
  const std::string& target = path.empty() ? out_path_ : path;
  if (target.empty()) return false;
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", target.c_str());
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (ok) {
    std::fprintf(stderr, "bench: wrote %s (%zu cases)\n", target.c_str(),
                 cases_.size());
  }
  return ok;
}

void BenchReporter::Clear() {
  bench_name_ = "unnamed";
  configured_ = false;
  scale_ = 0.0;
  llc_bytes_ = 0;
  b_atomic_ = 0;
  teams_ = 0;
  threads_ = 0;
  rho_read_ = 0.0;
  rho_write_ = 0.0;
  cases_.clear();
}

void MaybeEnableBenchReport(const std::string& bench_name, int argc,
                            char** argv) {
  BenchReporter& reporter = BenchReporter::Global();
  if (const char* reps = std::getenv("ATMX_BENCH_REPS")) {
    const long long n = std::atoll(reps);
    if (n >= 1 && n <= 1000) {
      reporter.repetitions_ = static_cast<int>(n);
    }
  }
  reporter.bench_name_ = bench_name;
  for (int i = 1; i < argc; ++i) {
    static constexpr char kFlag[] = "--bench-out=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      reporter.ArmOutput(argv[i] + sizeof(kFlag) - 1);
      return;
    }
  }
  if (const char* path = std::getenv("ATMX_BENCH_OUT")) {
    if (path[0] != '\0') reporter.ArmOutput(path);
  }
}

}  // namespace atmx::bench
