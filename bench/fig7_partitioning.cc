// Reproduces Fig. 7: duration of the partitioning-process components
// (Z-order sort, ZBlockCnts creation, quadtree recursion, tile
// materialization), reported relative to one execution of the traditional
// spspsp_gemm multiplication — the paper's criterion for whether the
// restructuring cost amortizes within a single multiplication.
//
// Expected shape (paper IV-B): partitioning < 1 multiplication for all
// matrices except R8-like cases (small product, large dimensions); the
// materialization dominates the partitioning time.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "kernels/sparse_kernels.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Fig. 7: partitioning component breakdown ===\n");
  std::printf("%s\n\n", env.Describe().c_str());
  std::printf(
      "All columns are fractions of one spspsp_gemm execution (C = A*A); "
      "'total<1' means the partitioning pays for itself within a single "
      "multiplication.\n\n");

  TablePrinter table({"Matrix", "sort", "blockcnt", "recursion",
                      "materialize", "total", "spspsp[s]", "tiles(d/sp)"});
  for (const WorkloadSpec& spec : Table1Specs()) {
    // Fig. 7 uses the real-world matrices plus one generated instance.
    if (spec.id[0] == 'G' && spec.id != "G1") continue;
    CooMatrix coo = MakeWorkloadMatrix(spec.id, env.scale);
    CsrMatrix csr = CooToCsr(coo);

    const BaselineResult mult = RunSpspsp(csr, csr);

    PartitionStats stats;
    ATMatrix atm = PartitionToAtm(coo, env.config, &stats);

    auto rel = [&](double seconds) {
      return TablePrinter::Fmt(seconds / mult.seconds, 3);
    };
    table.AddRow({spec.id, rel(stats.sort_seconds),
                  rel(stats.blockcount_seconds),
                  rel(stats.recursion_seconds),
                  rel(stats.materialize_seconds),
                  rel(stats.TotalSeconds()),
                  TablePrinter::Fmt(mult.seconds, 4),
                  std::to_string(stats.dense_tiles) + "/" +
                      std::to_string(stats.sparse_tiles)});
  }
  table.Print();
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("fig7_partitioning", argc, argv);
  atmx::bench::Run();
  return 0;
}
