// Reproduces Fig. 10: impact of incrementally enabling the optimization
// steps on C = A*A runtime, relative to the spspsp_gemm baseline:
//   (1) baseline: unpartitioned CSR Gustavson,
//   (2) fixed-size sparse-only tiles,
//   (3) + density estimation (dense target tiles),
//   (4) + mixed (dense) operand tiles,
//   (5) adaptive tiles instead of fixed,
//   (6) + dynamic JIT tile conversions (full ATMULT).
//
// Expected shapes (paper IV-E): (2) barely helps on its own; (3) unlocks
// the tiling gains for R2/R6-like matrices; (4) jumps on matrices with
// dense substructure (R3); adaptive (5) costs up to ~20% where fixed is
// already optimal (R6) but wins big on larger sparser matrices (R4) and
// is the only tiled variant that stays close to the baseline on
// hypersparse R7, where fixed-size tiling collapses.

#include <cstdio>

#include "bench/bench_common.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

struct Step {
  const char* label;
  TilingMode tiling;
  bool estimation;
  bool mixed;
  bool conversion;
};

constexpr Step kSteps[] = {
    {"2:fixed-sp", TilingMode::kFixed, false, false, false},
    {"3:+est", TilingMode::kFixed, true, false, false},
    {"4:+mixed", TilingMode::kFixed, true, true, false},
    {"5:adaptive", TilingMode::kAdaptive, true, true, false},
    {"6:+conv(ATMULT)", TilingMode::kAdaptive, true, true, true},
};

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Fig. 10: impact of single optimization steps ===\n");
  std::printf("%s\n\n", env.Describe().c_str());
  std::printf(
      "Cells: multiplication speed relative to step (1) spspsp_gemm "
      "(>1 = faster), excluding partitioning time (the paper's Fig. 10 "
      "measures the multiplication operation).\n\n");

  std::vector<std::string> headers = {"Matrix", "1:baseline"};
  for (const Step& step : kSteps) headers.push_back(step.label);
  TablePrinter table(headers);

  for (const char* id : {"R2", "R3", "R4", "R6", "R7"}) {
    CooMatrix coo = MakeWorkloadMatrix(id, env.scale);
    CsrMatrix csr = CooToCsr(coo);
    const BaselineResult baseline = RunSpspsp(csr, csr);

    std::vector<std::string> row = {id, "1.00x"};
    for (const Step& step : kSteps) {
      AtmConfig config = env.config;
      config.tiling = step.tiling;
      config.density_estimation = step.estimation;
      config.mixed_tiles = step.mixed;
      config.dynamic_conversion = step.conversion;

      ATMatrix atm = PartitionToAtm(coo, config);
      AtMult op(config, env.cost_model);
      const double seconds =
          MeasureSeconds([&] { op.Multiply(atm, atm); });
      row.push_back(TablePrinter::Fmt(baseline.seconds / seconds, 2) + "x");
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("fig10_opt_steps", argc, argv);
  atmx::bench::Run();
  return 0;
}
