// Scale-stability sweep: EXPERIMENTS.md attributes several residual
// deviations from the paper to the workload scale (per-row density of the
// banded surrogates, block-level density contrast). This bench runs the
// headline comparison (ATMULT vs spspsp, C = A*A) for a structured (R3)
// and a hypersparse (R7) workload across scales and shows how the shapes
// move toward the paper's numbers as the scale grows.

#include <cstdio>

#include "bench/bench_common.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Scale sweep: shape stability of the headline result ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  TablePrinter table({"Matrix", "scale", "dim", "nnz/row", "atmult",
                      "partition/mult", "spspsp[s]"});
  AtMult op(env.config, env.cost_model);
  struct Sweep {
    const char* id;
    std::vector<double> scales;
  };
  // The hypersparse R7 is cheap even near full scale, so sweep it far
  // enough for the per-row count to approach the original's 19/row.
  const std::vector<Sweep> sweeps = {{"R3", {0.015, 0.03, 0.06}},
                                     {"R7", {0.03, 0.12, 0.40}}};
  for (const auto& [id, scales] : sweeps) {
    for (double scale : scales) {
      CooMatrix coo = MakeWorkloadMatrix(id, scale);
      CsrMatrix csr = CooToCsr(coo);
      const double per_row =
          static_cast<double>(csr.nnz()) / csr.rows();

      const BaselineResult spspsp = RunSpspsp(csr, csr);
      PartitionStats pstats;
      ATMatrix atm = PartitionToAtm(coo, env.config, &pstats);
      const double atmult_seconds =
          MeasureSeconds([&] { op.Multiply(atm, atm); });

      table.AddRow(
          {id, TablePrinter::Fmt(scale, 3), std::to_string(csr.rows()),
           TablePrinter::Fmt(per_row, 1),
           TablePrinter::Fmt(spspsp.seconds / atmult_seconds, 2) + "x",
           TablePrinter::Fmt(pstats.TotalSeconds() / spspsp.seconds, 2),
           TablePrinter::Fmt(spspsp.seconds, 4)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check: the R3 speedup is stable across scales; R7's "
      "relative overheads (partitioning, tiling) shrink as nnz/row grows "
      "toward the full-scale matrix's 19/row.\n");
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("scale_sweep", argc, argv);
  atmx::bench::Run();
  return 0;
}
