// Reproduces Fig. 5: the water-level method. Left panel — the 1D
// histogram of logical-block densities of an estimated result matrix;
// right panel — the projected memory consumption as a function of the
// write density threshold, with the flexible memory limit and the
// resulting threshold chosen by the method.

#include <cstdio>

#include "bench/bench_common.h"
#include "estimate/density_estimator.h"
#include "estimate/water_level.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  std::printf("=== Fig. 5: water-level method ===\n");
  std::printf("%s\n\n", env.Describe().c_str());

  CooMatrix coo = MakeWorkloadMatrix("R3", env.scale);
  // A finer block grid than the multiplication default: Fig. 5 is about
  // the block-density *histogram*, which needs enough blocks to resolve
  // the dense-block / halo / background mixture.
  AtmConfig config = env.config;
  config.b_atomic = std::max<index_t>(16, config.AtomicBlockSize() / 4);
  ATMatrix atm = PartitionToAtm(coo, config);
  DensityMap estimate =
      EstimateProductDensity(atm.density_map(), atm.density_map());

  // Left: histogram of logical block densities (10 bins + empty bin).
  std::printf("--- block-density histogram of the estimated C = A*A ---\n");
  TablePrinter histogram({"density bin", "blocks", "bar"});
  constexpr int kBins = 10;
  std::vector<index_t> bins(kBins + 1, 0);
  for (index_t bi = 0; bi < estimate.grid_rows(); ++bi) {
    for (index_t bj = 0; bj < estimate.grid_cols(); ++bj) {
      const double rho = estimate.At(bi, bj);
      if (rho <= 0.0) {
        bins[0]++;
      } else {
        bins[1 + std::min(kBins - 1, static_cast<int>(rho * kBins))]++;
      }
    }
  }
  index_t max_bin = 1;
  for (index_t b : bins) max_bin = std::max(max_bin, b);
  for (int b = 0; b <= kBins; ++b) {
    char label[32];
    if (b == 0) {
      std::snprintf(label, sizeof(label), "empty");
    } else {
      std::snprintf(label, sizeof(label), "(%.1f, %.1f]",
                    (b - 1) / static_cast<double>(kBins),
                    b / static_cast<double>(kBins));
    }
    histogram.AddRow({label, std::to_string(bins[b]),
                      std::string(static_cast<std::size_t>(
                                      40.0 * bins[b] / max_bin),
                                  '#')});
  }
  histogram.Print();

  // Right: memory consumption vs. threshold, plus the water-level answer
  // for a sweep of memory limits.
  std::printf("\n--- projected memory vs. write density threshold ---\n");
  TablePrinter memory({"threshold", "projected memory"});
  for (double threshold :
       {1.01, 0.9, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.0}) {
    memory.AddRow({TablePrinter::Fmt(threshold, 2),
                   TablePrinter::FmtBytes(
                       EstimateMemoryBytes(estimate, threshold))});
  }
  memory.Print();

  std::printf("\n--- water-level solution for sliding memory limits ---\n");
  TablePrinter solution(
      {"mem limit", "threshold", "projected", "feasible"});
  const std::size_t dense_all = EstimateMemoryBytes(estimate, 0.0);
  // Minimum possible memory (dense exactly where rho >= 0.5).
  const std::size_t min_mem = EstimateMemoryBytes(estimate, 0.5);
  for (double fraction : {1.0, 0.8, 0.6, 0.4, 0.25, 0.1, 0.02, -0.05}) {
    const auto limit = static_cast<std::size_t>(
        min_mem + fraction * static_cast<double>(dense_all - min_mem));
    WaterLevelResult result = SolveWaterLevel(estimate, limit);
    solution.AddRow({TablePrinter::FmtBytes(limit),
                     TablePrinter::Fmt(result.threshold, 4),
                     TablePrinter::FmtBytes(result.projected_bytes),
                     result.feasible ? "yes" : "no (best effort)"});
  }
  solution.Print();
  std::printf(
      "\nShape check: lowering the limit raises the chosen threshold "
      "(fewer dense blocks), approaching the limit from the right as in "
      "the paper's Fig. 5.\n");
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("fig5_waterlevel", argc, argv);
  atmx::bench::Run();
  return 0;
}
