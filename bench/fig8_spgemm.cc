// Reproduces Fig. 8 (a, b, c): sparse C = A*A self-multiplication over all
// Table I workloads.
//   8a — runtime of ATMULT, spspd, spdd and ddd relative to the spspsp
//        baseline (higher = faster than plain Gustavson),
//   8b — fraction of ATMULT time spent in density estimation and dynamic
//        optimization (incl. JIT conversions),
//   8c — memory size of the result matrix per approach.
//
// Expected shapes (paper IV-C): ATMULT wins on matrices with dense
// substructure (R1-R6, up to ~6x) and on the skewed G series (3-5x over
// spspsp, shrinking slightly with skew); it trails slightly on the uniform
// hypersparse R7-R9 where partitioning adds overhead without optimization
// potential; spspd beats spspsp whenever the result is much denser than
// the inputs; the ATMULT result size tracks the skew-induced shrinking of
// the output (8c) while spspd stays at the full dense size.

#include <cstdio>

#include "bench/bench_common.h"
#include "ops/atmult.h"
#include "storage/convert.h"
#include "tile/partitioner.h"

namespace atmx::bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnvironment();
  BenchReporter::Global().Configure("fig8_spgemm", env);
  std::printf("=== Fig. 8: C = A*A multiplication experiments ===\n");
  std::printf("%s\n\n", env.Describe().c_str());
  std::printf(
      "8a columns: speed relative to spspsp_gemm (>1 = faster). ATMULT "
      "time includes partitioning amortization shown separately. Dense "
      "baselines are skipped ('-') where densification is infeasible at "
      "this scale.\n\n");

  TablePrinter fig8a({"Matrix", "atmult", "atmult(SLA)", "spspd", "spdd",
                      "ddd", "spspsp[s]", "atmult[s]", "partition[s]"});
  TablePrinter fig8b({"Matrix", "est[%ATMULT]", "opt[%ATMULT]",
                      "conversions", "pairs"});
  // The SLA run demonstrates section III-E: a flexible memory limit (here:
  // the plain CSR result size) raises the write threshold via the
  // water-level method, trading some speed for memory.
  TablePrinter fig8c({"Matrix", "atmult(ATM)", "atmult(SLA)",
                      "spspsp(CSR)", "spspd(dense)", "input(CSR)"});

  for (const WorkloadSpec& spec : Table1Specs()) {
    CooMatrix coo = MakeWorkloadMatrix(spec.id, env.scale);
    CsrMatrix csr = CooToCsr(coo);

    const BaselineResult spspsp = RunSpspsp(csr, csr);
    BenchReporter::Global().AddSample(spec.id + ".spspsp", spspsp.seconds);
    const BaselineResult spspd = RunSpspd(csr, csr);
    const BaselineResult spdd = RunSpdd(csr, csr, /*max_dense_dim=*/3600);
    const BaselineResult ddd = RunDdd(csr, csr, /*max_dense_dim=*/1600);

    PartitionStats pstats;
    ATMatrix atm = PartitionToAtm(coo, env.config, &pstats);
    AtMult op(env.config, env.cost_model);
    AtMultStats mstats;
    std::size_t atm_result_bytes = 0;
    const double atmult_seconds =
        BenchReporter::Global().MeasureCase(spec.id + ".atmult", [&] {
          ATMatrix c = op.Multiply(atm, atm, &mstats);
          atm_result_bytes = c.MemoryBytes();
        });

    // Memory-constrained run: budget = the plain CSR result size.
    AtmConfig sla_config = env.config;
    sla_config.result_mem_limit_bytes = spspsp.result_bytes;
    AtMult sla_op(sla_config, env.cost_model);
    std::size_t sla_result_bytes = 0;
    const double sla_seconds = MeasureSeconds([&] {
      ATMatrix c = sla_op.Multiply(atm, atm);
      sla_result_bytes = c.MemoryBytes();
    });

    fig8a.AddRow({spec.id, FmtSpeedup(spspsp, atmult_seconds),
                  FmtSpeedup(spspsp, sla_seconds), FmtRel(spspd, spspsp),
                  FmtRel(spdd, spspsp), FmtRel(ddd, spspsp),
                  TablePrinter::Fmt(spspsp.seconds, 4),
                  TablePrinter::Fmt(atmult_seconds, 4),
                  TablePrinter::Fmt(pstats.TotalSeconds(), 4)});

    fig8b.AddRow(
        {spec.id, TablePrinter::Fmt(mstats.EstimateFraction() * 100.0, 3),
         TablePrinter::Fmt(mstats.OptimizeFraction() * 100.0, 3),
         std::to_string(mstats.sparse_to_dense_conversions +
                        mstats.dense_to_sparse_conversions),
         std::to_string(mstats.pair_multiplications)});

    fig8c.AddRow({spec.id, TablePrinter::FmtBytes(atm_result_bytes),
                  TablePrinter::FmtBytes(sla_result_bytes),
                  TablePrinter::FmtBytes(spspsp.result_bytes),
                  spspd.ran ? TablePrinter::FmtBytes(spspd.result_bytes)
                            : std::string("-"),
                  TablePrinter::FmtBytes(csr.MemoryBytes())});
  }

  std::printf("--- Fig. 8a: relative multiplication performance ---\n");
  fig8a.Print();
  std::printf("\n--- Fig. 8b: estimation/optimization share of ATMULT ---\n");
  fig8b.Print();
  std::printf("\n--- Fig. 8c: result memory consumption ---\n");
  fig8c.Print();
}

}  // namespace
}  // namespace atmx::bench

int main(int argc, char** argv) {
  atmx::bench::InitBenchTelemetry("fig8_spgemm", argc, argv);
  atmx::bench::Run();
  return 0;
}
